//! Seeded weight initializers.
//!
//! All experiments in this workspace are deterministic: every random draw
//! flows from an explicit [`rand::rngs::StdRng`] seed, so tables regenerate
//! bit-identically across runs.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministically seeded RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform initialization on `[-limit, limit]`.
pub fn uniform(shape: Shape, limit: f32, rng: &mut StdRng) -> Tensor {
    let len = shape.len();
    let data = (0..len).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape by construction")
}

/// Xavier/Glorot uniform initialization: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier(shape: Shape, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, limit, rng)
}

/// He/Kaiming normal initialization: `std = sqrt(2 / fan_in)`.
///
/// Preferred for ReLU networks (all networks in this workspace use ReLU).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_normal(shape: Shape, fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Normal initialization with the given mean and standard deviation.
pub fn normal(shape: Shape, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let len = shape.len();
    // Box-Muller transform keeps us off external distribution crates.
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < len {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("generated buffer matches shape by construction")
}

/// A distribution adapter so callers can sample tensor entries from any
/// `rand` distribution if needed.
pub fn from_distribution<D: Distribution<f32>>(shape: Shape, dist: &D, rng: &mut StdRng) -> Tensor {
    let len = shape.len();
    let data = (0..len).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(Shape::d1(64), 1.0, &mut rng(7));
        let b = uniform(Shape::d1(64), 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(Shape::d1(64), 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_limit() {
        let t = uniform(Shape::d1(1000), 0.5, &mut rng(1));
        assert!(t.as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let small = xavier(Shape::d1(1000), 10, 10, &mut rng(2));
        let large = xavier(Shape::d1(1000), 1000, 1000, &mut rng(2));
        let max_small = small.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn normal_has_roughly_requested_moments() {
        let t = normal(Shape::d1(20_000), 1.0, 2.0, &mut rng(3));
        let n = t.len() as f32;
        let mean = t.as_slice().iter().sum::<f32>() / n;
        let var = t.as_slice().iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let t = he_normal(Shape::d1(20_000), 50, &mut rng(4));
        let n = t.len() as f32;
        let var = t.as_slice().iter().map(|&x| x * x).sum::<f32>() / n;
        let expected = 2.0 / 50.0;
        assert!((var / expected - 1.0).abs() < 0.15, "var {var} vs {expected}");
    }
}
