//! Norms and sparsity statistics.
//!
//! The structured-sparsification pipeline constantly asks two questions of a
//! block of weights: *how big is it* (group-Lasso norm, pruning decision)
//! and *is it all zero* (does the corresponding feature-map transfer need to
//! happen). These helpers answer both.

use crate::tensor::Tensor;

/// L2 (Euclidean) norm of a flat slice.
pub fn l2_norm(values: &[f32]) -> f32 {
    values.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
}

/// L1 norm of a flat slice.
pub fn l1_norm(values: &[f32]) -> f32 {
    values.iter().map(|&x| x.abs() as f64).sum::<f64>() as f32
}

/// Root-mean-square of a flat slice (`0` for an empty slice).
pub fn rms(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let ss: f64 = values.iter().map(|&x| (x as f64) * (x as f64)).sum();
    (ss / values.len() as f64).sqrt() as f32
}

/// Number of exactly-zero entries.
pub fn count_zeros(values: &[f32]) -> usize {
    values.iter().filter(|&&x| x == 0.0).count()
}

/// Fraction of exactly-zero entries (`0` for an empty slice).
pub fn sparsity(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    count_zeros(values) as f32 / values.len() as f32
}

/// Whether every entry is exactly zero.
pub fn is_all_zero(values: &[f32]) -> bool {
    values.iter().all(|&x| x == 0.0)
}

/// L2 norm of a whole tensor.
pub fn tensor_l2(t: &Tensor) -> f32 {
    l2_norm(t.as_slice())
}

/// Mean of a flat slice (`0` for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|&x| x as f64).sum::<f64>() / values.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_pythagoras() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn l1_sums_magnitudes() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn rms_of_constant_is_that_constant() {
        assert!((rms(&[2.0; 10]) - 2.0).abs() < 1e-6);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let v = [0.0, 1.0, 0.0, 0.0];
        assert_eq!(count_zeros(&v), 3);
        assert_eq!(sparsity(&v), 0.75);
        assert_eq!(sparsity(&[]), 0.0);
    }

    #[test]
    fn all_zero_detection() {
        assert!(is_all_zero(&[0.0, 0.0]));
        assert!(!is_all_zero(&[0.0, 1e-30]));
        assert!(is_all_zero(&[]));
    }

    #[test]
    fn mean_is_average() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
