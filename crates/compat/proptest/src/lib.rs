//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig`](test_runner::ProptestConfig)
//! and the [`proptest!`] macro. Unlike upstream there is no shrinking and no
//! persisted failure seeds: each case is seeded deterministically from the
//! test name and case index, so failures reproduce on every run.

#![forbid(unsafe_code)]

/// Re-export for macro-generated code; not part of the public API.
#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Deterministic per-case seed: FNV-1a of the test name, mixed with the
/// case index. Not part of the public API.
#[doc(hidden)]
pub fn __seed(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.max - self.size.min <= 1 {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Recursive helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                    $crate::__seed(stringify!($name), __case as u64),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        fn vec_sizes_respected(v in collection::vec(0u64..5, 3), w in collection::vec(0u64..5, 1..4)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..4).contains(&w.len()));
        }

        fn tuples_and_prop_map(p in (0usize..4, 0usize..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(p <= 33);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::__rng::{SeedableRng, StdRng};
        let strat = collection::vec(-1.0f32..1.0, 5);
        let mut r1 = StdRng::seed_from_u64(crate::__seed("t", 0));
        let mut r2 = StdRng::seed_from_u64(crate::__seed("t", 0));
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
