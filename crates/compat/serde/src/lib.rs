//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal serialization framework with the same call-site surface as
//! serde: `use serde::{Serialize, Deserialize}` + `#[derive(Serialize,
//! Deserialize)]`. Instead of serde's visitor-based data model, values
//! serialize into an owned [`Value`] tree which `serde_json` (the sibling
//! stand-in) prints and parses. Field order is preserved, so JSON output
//! is deterministic.
//!
//! Supported shapes — exactly what the workspace derives:
//! named-field structs, tuple structs (newtypes serialize transparently),
//! and enums with unit / tuple / struct variants (externally tagged, like
//! serde's default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned serialization tree: the stand-in's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while deserializing Y" constructor.
    pub fn expected(what: &str, ctx: &str) -> Self {
        Error(format!("expected {what} while deserializing {ctx}"))
    }

    /// Unknown-enum-variant constructor.
    pub fn unknown_variant(variant: &str, ctx: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ctx}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree node.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the node's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input map.
    ///
    /// Defaults to an error; `Option<T>` overrides it to yield `None`, so
    /// snapshots written before a field existed still load.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the type tolerates absence.
    fn missing_field(ctx: &str, field: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}` while deserializing {ctx}")))
    }
}

/// Looks up `key` in a derived struct's map and deserializes it
/// (used by generated code; not part of the public serde API).
///
/// # Errors
///
/// Propagates the field's deserialization error, or
/// [`Deserialize::missing_field`] when absent.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => T::missing_field(ctx, key),
    }
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (serde_json's
                    // convention); accept them back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_field(_ctx: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for core::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for core::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("map", "Range"))?;
        Ok(field(m, "start", "Range")?..field(m, "end", "Range")?)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let expect = [$($idx),+].len();
                if seq.len() != expect {
                    return Err(Error(format!(
                        "expected tuple of length {expect}, got {}", seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "HashMap"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        // Already key-ordered, so output is deterministic by construction.
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, -2i64, 0.5f64);
        assert_eq!(<(usize, i64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [4usize, 5, 6];
        assert_eq!(<[usize; 3]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn btreemap_roundtrips_in_key_order() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_string(), 1usize);
        m.insert("alpha".to_string(), 2usize);
        let v = m.to_value();
        let keys: Vec<&str> = v.as_map().expect("map").iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "zeta"], "BTreeMap serializes key-ordered");
        assert_eq!(BTreeMap::<String, usize>::from_value(&v).expect("parse"), m);
        assert!(BTreeMap::<String, usize>::from_value(&Value::U64(3)).is_err());
    }

    #[test]
    fn missing_option_field_is_none() {
        let got: Option<usize> = field(&[], "absent", "Test").unwrap();
        assert_eq!(got, None);
        assert!(field::<usize>(&[], "absent", "Test").is_err());
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<usize>::from_value(&Value::U64(1)).is_err());
        assert!(<[usize; 2]>::from_value(&vec![1usize].to_value()).is_err());
    }
}
