//! Derive macros for the offline in-repo `serde` stand-in.
//!
//! Parses `struct`/`enum` definitions directly from the token stream (no
//! `syn` available offline) and emits `serde::Serialize` /
//! `serde::Deserialize` impls against the stand-in's [`Value`] tree model.
//!
//! Supported shapes — the ones this workspace uses:
//! - structs with named fields,
//! - tuple structs (single-field newtypes serialize transparently,
//!   wider ones as sequences),
//! - enums with unit, tuple and struct variants (externally tagged).
//!
//! Generic type parameters and `#[serde(...)]` attributes are not
//! supported; deriving on such an item is a compile error with a clear
//! message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed field list of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Parsed derive input.
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => serialize_struct_body(name, fields),
        Input::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = input_name(&parsed);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => deserialize_struct_body(name, fields),
        Input::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = input_name(&parsed);
    // Fully qualified Result: derives must work inside crates that shadow
    // `Result` with a single-parameter alias.
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn input_name(input: &Input) -> &str {
    match input {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    }
}

// --- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (offline stand-in): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // [...]
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)` / `pub(in ...)` carry a parenthesized group.
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Extracts field names from `a: TyA, b: TyB, ...`, skipping types.
/// Tracks `<...>` nesting so commas inside generics don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&tokens, &mut i);
    }
    fields
}

fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated entries of a tuple field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --- codegen: Serialize ----------------------------------------------------

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        // Newtype structs serialize transparently, like serde.
        Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Unit => format!("serde::Value::Str(\"{name}\".to_string())"),
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, fields)| match fields {
            Fields::Unit => {
                format!("{name}::{vname} => serde::Value::Str(\"{vname}\".to_string())")
            }
            Fields::Tuple(1) => format!(
                "{name}::{vname}(f0) => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                 serde::Serialize::to_value(f0))])"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> =
                    binds.iter().map(|b| format!("serde::Serialize::to_value({b})")).collect();
                format!(
                    "{name}::{vname}({}) => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                     serde::Value::Seq(vec![{}]))])",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let entries: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => serde::Value::Map(vec![(\"{vname}\".to_string(), \
                     serde::Value::Map(vec![{}]))])",
                    fnames.join(", "),
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}

// --- codegen: Deserialize --------------------------------------------------

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: serde::field(m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> =
                (0..*n).map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?")).collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                 if seq.len() != {n} {{\n\
                     return Err(serde::Error::expected(\"sequence of length {n}\", \"{name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!(
            "match v {{\n\
                 serde::Value::Str(s) if s == \"{name}\" => Ok({name}),\n\
                 _ => Err(serde::Error::expected(\"\\\"{name}\\\"\", \"{name}\")),\n\
             }}"
        ),
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => {
                unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname})"));
            }
            Fields::Tuple(1) => tagged_arms.push(format!(
                "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(inner)?))"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let seq = inner.as_seq().ok_or_else(|| \
                             serde::Error::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                         if seq.len() != {n} {{\n\
                             return Err(serde::Error::expected(\
                                 \"sequence of length {n}\", \"{name}::{vname}\"));\n\
                         }}\n\
                         Ok({name}::{vname}({}))\n\
                     }}",
                    inits.join(", ")
                ));
            }
            Fields::Named(fnames) => {
                let inits: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: serde::field(fm, \"{f}\", \"{name}::{vname}\")?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let fm = inner.as_map().ok_or_else(|| \
                             serde::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                         Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    unit_arms.push(format!("other => Err(serde::Error::unknown_variant(other, \"{name}\"))"));
    tagged_arms.push(format!("other => Err(serde::Error::unknown_variant(other, \"{name}\"))"));
    format!(
        "match v {{\n\
             serde::Value::Str(s) => match s.as_str() {{ {} }},\n\
             serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{ {} }}\n\
             }}\n\
             _ => Err(serde::Error::expected(\"externally tagged variant\", \"{name}\")),\n\
         }}",
        unit_arms.join(",\n"),
        tagged_arms.join(",\n")
    )
}
