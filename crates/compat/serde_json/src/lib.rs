//! Offline stand-in for `serde_json`: serializes the in-repo serde
//! stand-in's [`Value`] tree to JSON text and parses JSON text back.
//!
//! Supports everything the workspace persists (numbers, strings, bools,
//! nulls, arrays, objects with preserved field order). Non-finite floats
//! serialize as `null`, matching `serde_json`'s behavior for `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to JSON indented with two spaces per level.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's f64 Display is shortest-roundtrip, but prints
                // integral values without a decimal point; keep that — the
                // parser classifies `1` as U64 and float deserialization
                // accepts integer values.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => {
                Err(Error(format!("unexpected character `{}` at byte {}", c as char, self.pos)))
            }
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid surrogate pair".to_string()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| Error("invalid unicode escape".to_string()))?);
                            // parse_hex4 advanced past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(Error("invalid escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated unicode escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid unicode escape".to_string()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error("invalid unicode escape".to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            let x: f64 = text.parse().map_err(|_| Error(format!("invalid number `{text}`")))?;
            Ok(Value::F64(x))
        } else if text.starts_with('-') {
            let n: i64 = text.parse().map_err(|_| Error(format!("invalid number `{text}`")))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 = text.parse().map_err(|_| Error(format!("invalid number `{text}`")))?;
            Ok(Value::U64(n))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f32>("3").unwrap(), 3.0);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1.0f32, -2.5, 3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), v);

        let s = "line\n\"quoted\" \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nonfinite_floats_become_null_and_parse_as_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Vec<f32>>("{bad json").is_err());
        assert!(from_str::<Vec<f32>>("[1, 2").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u64, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }
}
