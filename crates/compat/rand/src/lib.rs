//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand 0.8`: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`] and
//! [`distributions::Distribution`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic across platforms and runs, which is
//! all the reproduction needs (it never asks for cryptographic strength).
//!
//! Numeric streams differ from upstream `rand`'s ChaCha-based `StdRng`;
//! every consumer in this workspace treats the RNG as an opaque seeded
//! source, so only determinism matters, not the exact draw sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and passes BigCrush; seeded through SplitMix64 so that
    /// nearby seeds yield unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro's state must not be all zero; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Distribution abstraction, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: usize = rng.gen_range(5..5);
    }
}
