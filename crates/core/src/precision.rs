//! The numeric precision of the deployed inference path.
//!
//! The simulated accelerator is a 16-bit fixed-point machine (§II of the
//! paper), so [`Precision::I16`] is the default everywhere: plans charge
//! 2 bytes per value crossing the NoC and evaluation runs the quantized
//! i16 forward pass ([`lts_nn::QuantizedNetwork`]). [`Precision::F32`]
//! keeps the full-precision reference path for accuracy and traffic
//! comparisons (4 bytes per value, f32 arithmetic).

use serde::{Deserialize, Serialize};

/// Element precision of the deployed inference path: both the arithmetic
/// evaluation runs under and the element width the communication-volume
/// model charges per value crossing the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// 32-bit IEEE float: the training master format, kept as the
    /// reference inference path.
    F32,
    /// 16-bit integers with per-tensor symmetric scales: the accelerator's
    /// native width and the default deployment path.
    #[default]
    I16,
}

impl Precision {
    /// Bytes one element occupies on the wire (what the comm-volume model
    /// multiplies transition element counts by).
    pub fn bytes_per_value(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::I16 => 2,
        }
    }

    /// Short lowercase label for reports and benchmark record names.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::I16 => "i16",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_the_formats() {
        assert_eq!(Precision::F32.bytes_per_value(), 4);
        assert_eq!(Precision::I16.bytes_per_value(), 2);
        // The default must stay the accelerator width: every existing plan
        // in the repo charges 2 bytes per value.
        assert_eq!(Precision::default().bytes_per_value(), 2);
    }

    #[test]
    fn labels_round_trip_through_display() {
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::I16.to_string(), "i16");
    }
}
