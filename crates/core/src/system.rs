//! End-to-end system model: accelerator compute + NoC communication.
//!
//! Single-pass inference on the CMP proceeds layer by layer under a
//! barrier schedule (the paper's "data packets are injected in burst
//! during layer transition"): before a partitioned layer starts, its
//! input-synchronization messages are delivered through the flit-level
//! NoC simulator; then every core computes its partition, and the slowest
//! core gates the transition to the next layer.

use crate::simcache::SimUsage;
use crate::{CoreError, Result};
use lts_accel::{CoreConfig, CoreModel, InterposerEnergyModel};
use lts_noc::{EnergyModel, FaultModel, FaultStats, NocConfig, Simulator};
use lts_partition::{DegradedPlan, LayerPlan, Plan};
use serde::{Deserialize, Serialize};

/// Per-layer latency/energy breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerBreakdown {
    /// Layer name.
    pub name: String,
    /// Compute cycles of the slowest core.
    pub compute_cycles: u64,
    /// NoC makespan of the transition into this layer.
    pub comm_cycles: u64,
    /// Bytes crossing the NoC for this transition.
    pub traffic_bytes: u64,
    /// Sum of all cores' compute energy (pJ).
    pub compute_energy_pj: f64,
    /// NoC energy of the transition (pJ).
    pub noc_energy_pj: f64,
    /// Cycles flits spent blocked (congestion indicator).
    pub blocked_flit_cycles: u64,
}

/// Whole-network single-pass results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Total single-pass latency in cycles (compute + comm barriers).
    pub total_cycles: u64,
    /// Compute-only cycles.
    pub compute_cycles: u64,
    /// Communication-only cycles.
    pub comm_cycles: u64,
    /// Total NoC bytes.
    pub traffic_bytes: u64,
    /// Total compute energy (pJ).
    pub compute_energy_pj: f64,
    /// Total NoC energy (pJ).
    pub noc_energy_pj: f64,
    /// Fault and retransmission counters accumulated over every
    /// layer-transition simulation (all-zero on a fault-free run).
    pub faults: FaultStats,
    /// How much NoC simulation this evaluation consumed versus answered
    /// from the cross-sweep cache (compares vacuously equal; see
    /// [`SimUsage`]).
    pub sim: SimUsage,
    /// Link traversals that stayed inside one chiplet, summed over every
    /// layer-transition simulation (equals all link traversals on a
    /// single-chip mesh).
    pub intra_chip_traversals: u64,
    /// Link traversals that crossed an interposer seam (always `0` on a
    /// single-chip mesh). Each one is priced by the interposer energy
    /// model on top of the on-die NoC energy.
    pub inter_chip_traversals: u64,
    /// Per-layer details.
    pub layers: Vec<LayerBreakdown>,
}

impl SystemReport {
    /// Fraction of the single pass spent communicating.
    pub fn comm_share(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.comm_cycles as f64 / self.total_cycles as f64
    }

    /// Latency speedup of `self` relative to `baseline`
    /// (`> 1` means `self` is faster).
    pub fn speedup_vs(&self, baseline: &SystemReport) -> f64 {
        if self.total_cycles == 0 {
            return f64::INFINITY;
        }
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// NoC traffic of `self` as a fraction of `baseline`'s
    /// (the paper's "NoC traffic rate" column).
    pub fn traffic_rate_vs(&self, baseline: &SystemReport) -> f64 {
        if baseline.traffic_bytes == 0 {
            return if self.traffic_bytes == 0 { 1.0 } else { f64::INFINITY };
        }
        self.traffic_bytes as f64 / baseline.traffic_bytes as f64
    }

    /// NoC energy reduction relative to `baseline`
    /// (the paper's "Energy Reduction" column; `0.81` = 81 % saved).
    pub fn noc_energy_reduction_vs(&self, baseline: &SystemReport) -> f64 {
        if baseline.noc_energy_pj == 0.0 {
            return 0.0;
        }
        1.0 - self.noc_energy_pj / baseline.noc_energy_pj
    }

    /// Total (compute + NoC) energy in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.compute_energy_pj + self.noc_energy_pj
    }
}

/// The combined accelerator + NoC model.
///
/// # Examples
///
/// ```
/// use lts_core::SystemModel;
/// use lts_nn::descriptor::lenet_spec;
/// use lts_partition::Plan;
///
/// # fn main() -> Result<(), lts_core::CoreError> {
/// let plan = Plan::dense(&lenet_spec(), 16, 2)?;
/// let report = SystemModel::paper(16)?.evaluate(&plan)?;
/// assert!(report.comm_share() > 0.0 && report.comm_share() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemModel {
    core_model: CoreModel,
    noc_config: NocConfig,
    noc_energy: EnergyModel,
    /// Extra per-seam-crossing energy on multi-chip packages. Inert on a
    /// single-chip mesh (no traversal ever crosses a seam).
    interposer: InterposerEnergyModel,
    /// Fraction of each transition's NoC makespan hidden under the
    /// previous layer's compute (0 = strict barrier, the paper's model;
    /// the `ablation_overlap` bench sweeps this).
    overlap: f64,
    /// Injected NoC fault model ([`FaultModel::none`] = healthy mesh).
    fault: FaultModel,
}

impl SystemModel {
    /// The paper's configuration on `cores` cores (Table II core + mesh).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for `cores == 0`.
    pub fn paper(cores: usize) -> Result<Self> {
        let noc_config = NocConfig::paper_cores(cores)?;
        Ok(Self {
            core_model: CoreModel::new(CoreConfig::diannao()),
            noc_config,
            noc_energy: EnergyModel::default(),
            interposer: InterposerEnergyModel::default(),
            overlap: 0.0,
            fault: FaultModel::none(),
        })
    }

    /// The paper's configuration scaled out to a multi-chip module:
    /// `chiplets` chiplets (laid out on the squarest possible package
    /// grid), each a Table II mesh of `cores_per_chiplet` cores, joined
    /// by interposer links. `paper_mcm(1, n)` models exactly the same
    /// package as [`SystemModel::paper`]`(n)` and produces bit-identical
    /// reports.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when either count is zero.
    pub fn paper_mcm(chiplets: usize, cores_per_chiplet: usize) -> Result<Self> {
        let noc_config = NocConfig::paper_mcm(chiplets, cores_per_chiplet)?;
        Ok(Self {
            core_model: CoreModel::new(CoreConfig::diannao()),
            noc_config,
            noc_energy: EnergyModel::default(),
            interposer: InterposerEnergyModel::default(),
            overlap: 0.0,
            fault: FaultModel::none(),
        })
    }

    /// Builds from explicit parts.
    pub fn new(core_model: CoreModel, noc_config: NocConfig, noc_energy: EnergyModel) -> Self {
        Self {
            core_model,
            noc_config,
            noc_energy,
            interposer: InterposerEnergyModel::default(),
            overlap: 0.0,
            fault: FaultModel::none(),
        }
    }

    /// Replaces the interposer (seam-crossing) energy model.
    pub fn with_interposer_energy(mut self, interposer: InterposerEnergyModel) -> Self {
        self.interposer = interposer;
        self
    }

    /// Sets the compute/communication overlap factor in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `overlap` is outside `[0, 1]`.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        assert!((0.0..=1.0).contains(&overlap), "overlap must be in [0, 1]");
        self.overlap = overlap;
        self
    }

    /// Injects a NoC fault model: all subsequent evaluations simulate
    /// layer transitions on the faulty mesh (dead routers/links are
    /// routed around, transient flit faults trigger NIC retransmission).
    /// [`FaultModel::none`] restores the healthy mesh.
    pub fn with_fault_model(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    /// The NoC configuration in use.
    pub fn noc_config(&self) -> &NocConfig {
        &self.noc_config
    }

    /// Prices one NoC simulation with this model's energy parameters:
    /// on-die router/link/NIC energy plus the interposer premium for any
    /// seam-crossing traversals. The interposer term is added only when
    /// crossings occurred, so single-chip totals stay bit-identical.
    pub(crate) fn noc_total_energy_pj(&self, sim: &lts_noc::SimReport) -> f64 {
        let mut energy = self.noc_energy.report(sim, self.cores()).total_pj();
        if sim.inter_chip_traversals > 0 {
            energy += self.interposer.crossings_pj(sim.inter_chip_traversals);
        }
        energy
    }

    /// The injected fault model.
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.noc_config.nodes()
    }

    /// Evaluates a parallelization plan end to end (single input image).
    ///
    /// # Errors
    ///
    /// Propagates NoC simulation errors (cycle-limit means deadlock or a
    /// pathological trace).
    pub fn evaluate(&self, plan: &Plan) -> Result<SystemReport> {
        self.evaluate_layers(&plan.layers, None)
    }

    /// Evaluates a fail-operational [`DegradedPlan`] end to end: each
    /// transition's messages are remapped from logical survivor ids to
    /// physical node ids before simulation, and compute runs only on the
    /// surviving cores.
    ///
    /// The injected fault model (see [`SystemModel::with_fault_model`])
    /// should normally mark the plan's dead cores as dead routers so the
    /// NoC detours around them.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when the plan references a physical core
    /// outside this chip; otherwise as [`SystemModel::evaluate`].
    pub fn evaluate_degraded(&self, degraded: &DegradedPlan) -> Result<SystemReport> {
        if let Some(&max) = degraded.core_map.iter().max() {
            if max >= self.cores() {
                return Err(CoreError::BadConfig(format!(
                    "degraded plan references physical core {max} on a {}-core chip",
                    self.cores()
                )));
            }
        }
        self.evaluate_layers(&degraded.plan.layers, Some(&degraded.core_map))
    }

    /// Core of [`SystemModel::evaluate`]: runs `plan_layers` under the
    /// barrier schedule, with message endpoints remapped through
    /// `core_map` (`core_map[logical] = physical`) when given. The
    /// recovery driver uses this to evaluate plan *segments*.
    pub(crate) fn evaluate_layers(
        &self,
        plan_layers: &[LayerPlan],
        core_map: Option<&[usize]>,
    ) -> Result<SystemReport> {
        let _probe = lts_obs::span("core.evaluate_layers");
        // One sequential cycle track per evaluation: its per-layer
        // comm/compute records sum to `total_cycles` *exactly* (the obs
        // bench pins this reconciliation).
        let track = lts_obs::cycle_track("core.evaluate");
        let mut sim = Simulator::with_faults(self.noc_config, self.fault.clone())?;
        let mut usage = SimUsage::default();
        let mut layers = Vec::with_capacity(plan_layers.len());
        let mut total_cycles = 0u64;
        let mut compute_total = 0u64;
        let mut comm_total = 0u64;
        let mut traffic_total = 0u64;
        let mut compute_energy = 0.0f64;
        let mut noc_energy = 0.0f64;
        let mut faults = FaultStats::default();
        let mut intra_hops = 0u64;
        let mut inter_hops = 0u64;
        for lp in plan_layers {
            // Communication phase (barrier before the layer runs); on a
            // degraded plan the trace is remapped to physical node ids.
            let remapped = core_map.map(|map| {
                lp.traffic
                    .messages
                    .iter()
                    .map(|m| {
                        lts_noc::traffic::Message::new(
                            map[m.src],
                            map[m.dst],
                            m.bytes,
                            m.inject_cycle,
                        )
                    })
                    .collect::<Vec<_>>()
            });
            let messages = match &remapped {
                Some(msgs) => msgs.as_slice(),
                None => lp.traffic.messages.as_slice(),
            };
            let (comm_cycles, layer_noc_energy, blocked) = if messages.is_empty() {
                (0, 0.0, 0)
            } else {
                let report = crate::simcache::run_cached(
                    &mut sim,
                    &self.noc_config,
                    &self.fault,
                    messages,
                    &mut usage,
                )?;
                faults.merge(&report.faults);
                intra_hops += report.intra_chip_traversals;
                inter_hops += report.inter_chip_traversals;
                let energy = self.noc_total_energy_pj(&report);
                (report.makespan, energy, report.blocked_flit_cycles)
            };
            let visible_comm = ((comm_cycles as f64) * (1.0 - self.overlap)).round() as u64;
            // Compute phase: the slowest core gates the barrier.
            let mut worst = 0u64;
            let mut layer_compute_energy = 0.0f64;
            for &assigned in &lp.assignments {
                let cost = self.core_model.layer_cost(&lp.spec, assigned);
                worst = worst.max(cost.cycles);
                layer_compute_energy += cost.energy_pj;
            }
            lts_obs::cycle_record(track, "comm", &lp.spec.name, visible_comm);
            lts_obs::cycle_record(track, "compute", &lp.spec.name, worst);
            total_cycles += visible_comm + worst;
            compute_total += worst;
            comm_total += visible_comm;
            traffic_total += lp.traffic.total_bytes();
            compute_energy += layer_compute_energy;
            noc_energy += layer_noc_energy;
            layers.push(LayerBreakdown {
                name: lp.spec.name.clone(),
                compute_cycles: worst,
                comm_cycles: visible_comm,
                traffic_bytes: lp.traffic.total_bytes(),
                compute_energy_pj: layer_compute_energy,
                noc_energy_pj: layer_noc_energy,
                blocked_flit_cycles: blocked,
            });
        }
        Ok(SystemReport {
            total_cycles,
            compute_cycles: compute_total,
            comm_cycles: comm_total,
            traffic_bytes: traffic_total,
            compute_energy_pj: compute_energy,
            noc_energy_pj: noc_energy,
            faults,
            sim: usage,
            intra_chip_traversals: intra_hops,
            inter_chip_traversals: inter_hops,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::{lenet_spec, mlp_spec};
    use std::collections::HashMap;

    fn eval(cores: usize, spec: &lts_nn::NetworkSpec) -> SystemReport {
        let model = SystemModel::paper(cores).unwrap();
        let plan = Plan::dense(spec, cores, 2).unwrap();
        model.evaluate(&plan).unwrap()
    }

    #[test]
    fn lenet_single_pass_has_compute_and_comm() {
        let r = eval(16, &lenet_spec());
        assert!(r.compute_cycles > 0);
        assert!(r.comm_cycles > 0);
        assert_eq!(r.total_cycles, r.compute_cycles + r.comm_cycles);
        assert!(r.comm_share() > 0.0 && r.comm_share() < 1.0);
        assert!(r.noc_energy_pj > 0.0);
    }

    #[test]
    fn sixteen_cores_beat_one_core_on_compute() {
        let spec = lenet_spec();
        let single = eval(1, &spec);
        let sixteen = eval(16, &spec);
        assert_eq!(single.comm_cycles, 0, "one core never communicates");
        assert!(sixteen.compute_cycles < single.compute_cycles);
    }

    #[test]
    fn zeroed_weights_remove_comm_cycles() {
        let spec = mlp_spec();
        let model = SystemModel::paper(16).unwrap();
        let dense = model.evaluate(&Plan::dense(&spec, 16, 2).unwrap()).unwrap();
        let mut weights = HashMap::new();
        weights.insert("ip2".into(), vec![0.0f32; 512 * 304]);
        weights.insert("ip3".into(), vec![0.0f32; 304 * 10]);
        let sparse_plan = Plan::build(&spec, 16, &weights, 2).unwrap();
        let sparse = model.evaluate(&sparse_plan).unwrap();
        assert_eq!(sparse.comm_cycles, 0);
        assert!(sparse.speedup_vs(&dense) > 1.0);
        assert_eq!(sparse.traffic_rate_vs(&dense), 0.0);
        assert!(sparse.noc_energy_reduction_vs(&dense) > 0.99);
    }

    #[test]
    fn overlap_hides_communication() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        let barrier = SystemModel::paper(16).unwrap().evaluate(&plan).unwrap();
        let overlapped = SystemModel::paper(16).unwrap().with_overlap(1.0).evaluate(&plan).unwrap();
        assert_eq!(overlapped.comm_cycles, 0);
        assert!(overlapped.total_cycles < barrier.total_cycles);
        // Energy is unaffected by overlap.
        assert!((overlapped.noc_energy_pj - barrier.noc_energy_pj).abs() < 1e-6);
    }

    #[test]
    fn per_layer_breakdown_sums_to_totals() {
        let r = eval(16, &lenet_spec());
        let compute: u64 = r.layers.iter().map(|l| l.compute_cycles).sum();
        let comm: u64 = r.layers.iter().map(|l| l.comm_cycles).sum();
        assert_eq!(compute, r.compute_cycles);
        assert_eq!(comm, r.comm_cycles);
        let traffic: u64 = r.layers.iter().map(|l| l.traffic_bytes).sum();
        assert_eq!(traffic, r.traffic_bytes);
    }

    #[test]
    fn evaluation_accounts_one_sim_lookup_per_communicating_layer() {
        let r = eval(16, &lenet_spec());
        let with_comm = r.layers.iter().filter(|l| l.traffic_bytes > 0).count() as u64;
        assert!(with_comm > 0);
        assert_eq!(r.sim.lookups(), with_comm, "{:?}", r.sim);
        assert!(
            r.sim.sims == 0 || r.sim.cycles_simulated > 0,
            "simulated transitions must account stepped cycles: {:?}",
            r.sim
        );
    }

    #[test]
    fn ratio_helpers() {
        let a = eval(16, &lenet_spec());
        assert_eq!(a.speedup_vs(&a), 1.0);
        assert_eq!(a.traffic_rate_vs(&a), 1.0);
        assert_eq!(a.noc_energy_reduction_vs(&a), 0.0);
    }

    #[test]
    fn none_fault_model_changes_nothing() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        let plain = SystemModel::paper(16).unwrap().evaluate(&plan).unwrap();
        let faulty = SystemModel::paper(16)
            .unwrap()
            .with_fault_model(lts_noc::FaultModel::none())
            .evaluate(&plan)
            .unwrap();
        assert_eq!(plain, faulty);
        assert!(!plain.faults.any());
    }

    #[test]
    fn degraded_plan_with_no_deaths_matches_evaluate() {
        let spec = lenet_spec();
        let model = SystemModel::paper(16).unwrap();
        let healthy = model.evaluate(&Plan::dense(&spec, 16, 2).unwrap()).unwrap();
        let degraded =
            lts_partition::replan(&spec, 16, &[], &std::collections::HashMap::new(), 2).unwrap();
        assert_eq!(model.evaluate_degraded(&degraded).unwrap(), healthy);
    }

    #[test]
    fn dead_cores_are_survivable_with_rerouting() {
        let spec = lenet_spec();
        let dead = [5usize, 10];
        let degraded =
            lts_partition::replan(&spec, 16, &dead, &std::collections::HashMap::new(), 2).unwrap();
        let fault = dead.iter().fold(lts_noc::FaultModel::none(), |f, &d| f.kill_router(d));
        let model = SystemModel::paper(16).unwrap().with_fault_model(fault);
        let report = model.evaluate_degraded(&degraded).unwrap();
        assert!(report.total_cycles > 0);
        assert!(report.comm_cycles > 0, "14 survivors still synchronize");
    }

    #[test]
    fn transient_faults_slow_the_system_down() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        let clean = SystemModel::paper(16).unwrap().evaluate(&plan).unwrap();
        let fault = lts_noc::FaultModel::none().with_seed(17).drop_rate(0.02);
        let faulty =
            SystemModel::paper(16).unwrap().with_fault_model(fault).evaluate(&plan).unwrap();
        assert!(faulty.faults.flits_dropped > 0, "a 2% drop rate must fire");
        assert!(faulty.faults.packets_retransmitted > 0);
        assert!(faulty.comm_cycles > clean.comm_cycles, "retransmissions cost time");
        assert_eq!(faulty.compute_cycles, clean.compute_cycles, "compute is unaffected");
    }

    #[test]
    fn single_chiplet_mcm_report_is_bit_identical_to_single_chip() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        let mesh = SystemModel::paper(16).unwrap().evaluate(&plan).unwrap();
        let mcm = SystemModel::paper_mcm(1, 16).unwrap().evaluate(&plan).unwrap();
        assert_eq!(mesh, mcm);
        assert_eq!(mcm.inter_chip_traversals, 0);
        assert!(mcm.intra_chip_traversals > 0);
    }

    #[test]
    fn hop_split_is_populated_and_mesh_runs_have_no_inter_hops() {
        let r = eval(16, &lenet_spec());
        assert!(r.intra_chip_traversals > 0);
        assert_eq!(r.inter_chip_traversals, 0);
    }

    #[test]
    fn multi_chip_package_prices_interposer_crossings() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 32, 2).unwrap();
        let model = SystemModel::paper_mcm(2, 16).unwrap();
        assert_eq!(model.cores(), 32);
        let priced = model.evaluate(&plan).unwrap();
        assert!(priced.inter_chip_traversals > 0, "a 32-core plan must cross the seam");
        let free = SystemModel::paper_mcm(2, 16)
            .unwrap()
            .with_interposer_energy(lts_accel::InterposerEnergyModel { seam_crossing_pj: 0.0 })
            .evaluate(&plan)
            .unwrap();
        let premium =
            lts_accel::InterposerEnergyModel::default().crossings_pj(priced.inter_chip_traversals);
        assert!((priced.noc_energy_pj - free.noc_energy_pj - premium).abs() < 1e-6);
    }

    #[test]
    fn oversized_degraded_plans_are_rejected() {
        let spec = lenet_spec();
        let degraded =
            lts_partition::replan(&spec, 32, &[1], &std::collections::HashMap::new(), 2).unwrap();
        let model = SystemModel::paper(16).unwrap();
        assert!(matches!(model.evaluate_degraded(&degraded), Err(crate::CoreError::BadConfig(_))));
    }
}
