//! Training pipelines: baseline, structure-level, and communication-aware
//! sparsified (§IV-C-3).
//!
//! The sparsified pipeline follows the paper's methodology:
//!
//! 1. build the producer×consumer block layouts for every layer whose
//!    input crosses the NoC (the first layer reads the replicated input
//!    image and is skipped);
//! 2. train with group-Lasso regularization — uniform strengths (SS) or
//!    hop-distance strengths (SS_Mask);
//! 3. prune near-zero groups and freeze them at exactly zero;
//! 4. fine-tune the survivors at a reduced learning rate;
//! 5. quantize to the accelerator's 16-bit fixed point and evaluate.

use crate::precision::Precision;
use crate::strategy::SparsityScheme;
use crate::{CoreError, Result};
use lts_datasets::TrainTest;
use lts_nn::prune::{prune_groups, PruneCriterion, PruneReport};
use lts_nn::regularizer::{GroupLasso, StrengthMask};
use lts_nn::trainer::{parallel_accuracy, TrainConfig, TrainStats, Trainer};
use lts_nn::{quantized_parallel_accuracy, Network, QuantizedNetwork};
use lts_noc::{NocConfig, Topo};
use lts_partition::{hop_power_mask, two_level_mask, Plan};
use lts_tensor::{par, ExecConfig, Tensor};
use std::collections::HashMap;

/// Shared pipeline knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Main training phase.
    pub train: TrainConfig,
    /// Fine-tuning epochs after pruning (0 disables fine-tuning).
    pub fine_tune_epochs: usize,
    /// Learning-rate multiplier for fine-tuning.
    pub fine_tune_lr_scale: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Worker threads for test-set evaluation.
    pub eval_threads: usize,
    /// Quantize for deployment before evaluating (what the chip runs).
    /// Under [`Precision::I16`] this is the full i16 inference path
    /// (calibrated per-tensor scales, i16 GEMM); under [`Precision::F32`]
    /// it is the historical Q7.8 weight-rounding shim. `false` evaluates
    /// the f32 master weights unmodified in either precision.
    pub quantize: bool,
    /// Deployed inference precision: the arithmetic evaluation runs under
    /// and the element width plans charge per NoC-crossing value.
    pub precision: Precision,
    /// Execution-engine worker count for the whole pipeline (kernels,
    /// data-parallel training, evaluation). Installed process-wide at
    /// every pipeline entry point; results are bit-identical for any
    /// value.
    pub exec: ExecConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            fine_tune_epochs: 2,
            fine_tune_lr_scale: 0.2,
            eval_batch: 64,
            eval_threads: 4,
            quantize: true,
            precision: Precision::I16,
            exec: ExecConfig::from_env(),
        }
    }
}

/// Result of training one network.
#[derive(Debug, Clone)]
pub struct TrainedOutcome {
    /// The trained network (unquantized master weights).
    pub network: Network,
    /// Per-epoch statistics of the main phase.
    pub train_stats: TrainStats,
    /// Test accuracy of the (optionally quantized) network.
    pub test_accuracy: f32,
}

/// Result of the sparsified pipeline.
#[derive(Debug, Clone)]
pub struct SparsifiedOutcome {
    /// The trained, pruned, fine-tuned network.
    pub network: Network,
    /// Main-phase statistics.
    pub train_stats: TrainStats,
    /// Test accuracy after pruning + fine-tuning (+ quantization).
    pub test_accuracy: f32,
    /// One prune report per regularized layer, `(layer, report)`.
    pub prune_reports: Vec<(String, PruneReport)>,
}

/// Trains a network without structured sparsity (the paper's *Baseline*,
/// also used for the structure-level variants, whose parallelism is baked
/// into their grouped topology).
///
/// # Examples
///
/// ```no_run
/// use lts_core::pipeline::{train_baseline, PipelineConfig};
/// use lts_datasets::presets::synth_mnist;
/// use lts_nn::models;
///
/// # fn main() -> Result<(), lts_core::CoreError> {
/// let data = synth_mnist(480, 160, 0);
/// let outcome = train_baseline(models::mlp(784, 10, 0)?, &data, &PipelineConfig::default())?;
/// println!("accuracy: {:.1}%", outcome.test_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn train_baseline(
    mut network: Network,
    data: &TrainTest,
    config: &PipelineConfig,
) -> Result<TrainedOutcome> {
    let _probe = lts_obs::span("core.train_baseline");
    par::install(config.exec);
    let trainer = Trainer::new(config.train)?;
    let train_stats = trainer.train(&mut network, &data.train.images, &data.train.labels)?;
    let test_accuracy = evaluate(&network, data, config)?;
    Ok(TrainedOutcome { network, train_stats, test_accuracy })
}

/// Runs the full communication-aware sparsified pipeline.
///
/// `cores` decides both the block granularity and (for SS_Mask) the mesh
/// whose hop distances weight the per-block sparsity strengths.
///
/// # Examples
///
/// ```no_run
/// use lts_core::pipeline::{train_sparsified, PipelineConfig};
/// use lts_core::strategy::SparsityScheme;
/// use lts_datasets::presets::synth_mnist;
/// use lts_nn::models;
/// use lts_nn::prune::PruneCriterion;
///
/// # fn main() -> Result<(), lts_core::CoreError> {
/// let data = synth_mnist(480, 160, 0);
/// let outcome = train_sparsified(
///     models::mlp(784, 10, 0)?,
///     &data,
///     &PipelineConfig::default(),
///     16,
///     SparsityScheme::mask(),
///     2.0,
///     PruneCriterion::RmsBelowRelative(0.35),
/// )?;
/// for (layer, report) in &outcome.prune_reports {
///     println!("{layer}: {} of {} groups pruned", report.groups_pruned, report.groups_total);
/// }
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] if the network has no sparsifiable
/// layers, and propagates training errors.
pub fn train_sparsified(
    mut network: Network,
    data: &TrainTest,
    config: &PipelineConfig,
    cores: usize,
    scheme: SparsityScheme,
    lambda: f32,
    prune: PruneCriterion,
) -> Result<SparsifiedOutcome> {
    let _probe = lts_obs::span("core.train_sparsified");
    par::install(config.exec);
    let spec = network.spec();
    let dense_plan = Plan::dense(&spec, cores, config.precision.bytes_per_value())?;
    // Regularize exactly the layers whose input synchronization crosses
    // the NoC: zeroing their blocks is what removes traffic.
    let mask = strength_mask(cores, scheme)?;
    let mut targeted: Vec<(String, lts_nn::GroupLayout)> = Vec::new();
    for lp in &dense_plan.layers {
        if lp.traffic.is_empty() {
            continue;
        }
        if let Some(layout) = &lp.layout {
            targeted.push((lp.spec.name.clone(), layout.clone()));
        }
    }
    if targeted.is_empty() {
        return Err(CoreError::BadConfig(format!(
            "network `{}` has no layers with inter-core traffic to sparsify",
            spec.name
        )));
    }
    let mut trainer = Trainer::new(config.train)?;
    for (layer, layout) in &targeted {
        trainer =
            trainer.with_regularizer(GroupLasso::new(layer, layout.clone(), lambda, mask.clone())?);
    }
    let train_stats = trainer.train(&mut network, &data.train.images, &data.train.labels)?;

    // Prune and freeze.
    let mut prune_reports = Vec::with_capacity(targeted.len());
    for (layer, layout) in &targeted {
        let param = network
            .layer_weight_mut(layer)
            .ok_or_else(|| CoreError::BadConfig(format!("layer `{layer}` disappeared")))?;
        let report = prune_groups(param, layout, prune)?;
        prune_reports.push((layer.clone(), report));
    }

    // Fine-tune the survivors (no Lasso; frozen groups stay zero).
    if config.fine_tune_epochs > 0 {
        let ft = Trainer::new(TrainConfig {
            epochs: config.fine_tune_epochs,
            lr: config.train.lr * config.fine_tune_lr_scale,
            ..config.train
        })?;
        ft.train(&mut network, &data.train.images, &data.train.labels)?;
    }
    let test_accuracy = evaluate(&network, data, config)?;
    Ok(SparsifiedOutcome { network, train_stats, test_accuracy, prune_reports })
}

/// Chiplet-distance weight of the two-level SS_Mask on multi-chip
/// packages: one interposer seam counts as this many on-die hops,
/// mirroring the default interposer link's 4× latency over an on-die
/// link (see `lts_noc::InterposerConfig`).
pub const MCM_INTER_WEIGHT: f32 = 4.0;

/// The strength mask for a scheme on `cores` cores (single-chip mesh).
///
/// # Errors
///
/// Propagates mask-construction errors.
pub fn strength_mask(cores: usize, scheme: SparsityScheme) -> Result<StrengthMask> {
    match scheme {
        SparsityScheme::Ss => Ok(StrengthMask::uniform(cores)),
        SparsityScheme::SsMask { power } => {
            strength_mask_for(&NocConfig::paper_cores(cores)?, power)
        }
    }
}

/// The SS_Mask strength mask for an arbitrary package topology: plain
/// hop distance on a single-chip mesh (bit-identical to the historical
/// mesh-only mask); on a multi-chip module the two-level distance
/// additionally penalizes seam-crossing groups by the chiplet distance
/// weighted by [`MCM_INTER_WEIGHT`].
///
/// # Errors
///
/// Propagates mask-construction errors.
pub fn strength_mask_for(config: &NocConfig, power: f32) -> Result<StrengthMask> {
    match config.topo() {
        Topo::Mesh(mesh) => Ok(hop_power_mask(&mesh, power, true)?),
        Topo::Mcm(package) => Ok(two_level_mask(&package, power, MCM_INTER_WEIGHT, true)?),
    }
}

/// Samples used to calibrate per-tensor activation scales when building
/// the i16 deployment network. A small prefix of the training set is
/// enough: scales only need the coarse dynamic range, and a fixed prefix
/// keeps calibration deterministic.
pub const CALIBRATION_SAMPLES: usize = 64;

/// The leading `CALIBRATION_SAMPLES` training images, as a standalone
/// batch for quantization calibration.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] if the training set is empty.
pub fn calibration_batch(data: &TrainTest) -> Result<Tensor> {
    if data.train.is_empty() {
        return Err(CoreError::BadConfig("empty training set: nothing to calibrate on".into()));
    }
    Ok(data.train.take(CALIBRATION_SAMPLES).images)
}

/// Test accuracy under the deployment conditions (optionally quantized),
/// without disturbing the master weights.
///
/// Under the default [`Precision::I16`] this runs the genuine i16
/// inference path: per-tensor symmetric scales calibrated on a training
/// prefix ([`calibration_batch`]), i16 register-blocked GEMM, f32 only at
/// layer boundaries. [`Precision::F32`] keeps the historical behavior
/// (f32 arithmetic, optionally with Q7.8-rounded weights).
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate(network: &Network, data: &TrainTest, config: &PipelineConfig) -> Result<f32> {
    let _probe = lts_obs::span("core.evaluate_accuracy");
    par::install(config.exec);
    if config.quantize && config.precision == Precision::I16 {
        let calibration = calibration_batch(data)?;
        let deployed = QuantizedNetwork::from_network(network, &calibration)?;
        return Ok(quantized_parallel_accuracy(
            &deployed,
            &data.test.images,
            &data.test.labels,
            config.eval_batch,
            config.eval_threads,
        )?);
    }
    let mut deployed = network.clone();
    if config.quantize {
        deployed.quantize_weights();
    }
    Ok(parallel_accuracy(
        &deployed,
        &data.test.images,
        &data.test.labels,
        config.eval_batch,
        config.eval_threads,
    )?)
}

/// Extracts `layer name → flat weight values` for plan construction.
/// Weights are quantized first when `quantize` is set, so traffic
/// decisions see exactly what the chip would hold.
pub fn weights_map(network: &Network, quantize: bool) -> HashMap<String, Vec<f32>> {
    let mut deployed = network.clone();
    if quantize {
        deployed.quantize_weights();
    }
    deployed
        .weight_layer_names()
        .into_iter()
        .filter_map(|name| {
            deployed.layer_weight(&name).map(|p| (name.clone(), p.value.as_slice().to_vec()))
        })
        .collect()
}

/// Builds the parallelization plan for a trained network: sparsity-aware
/// when `sparse` (uses the network's zero structure), dense otherwise.
/// Values are charged at the accelerator's native 16-bit width; use
/// [`plan_for_precision`] to plan at another element width.
///
/// # Errors
///
/// Propagates plan-construction errors.
pub fn plan_for(network: &Network, cores: usize, sparse: bool, quantize: bool) -> Result<Plan> {
    plan_for_precision(network, cores, sparse, quantize, Precision::I16)
}

/// [`plan_for`] with an explicit element precision: each value crossing
/// the NoC is charged `precision.bytes_per_value()` bytes by the
/// communication-volume model.
///
/// # Errors
///
/// Propagates plan-construction errors.
pub fn plan_for_precision(
    network: &Network,
    cores: usize,
    sparse: bool,
    quantize: bool,
    precision: Precision,
) -> Result<Plan> {
    let _probe = lts_obs::span("core.plan_for");
    let spec = network.spec();
    let width = precision.bytes_per_value();
    if sparse {
        Ok(Plan::build(&spec, cores, &weights_map(network, quantize), width)?)
    } else {
        Ok(Plan::dense(&spec, cores, width)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_datasets::presets::synth_mnist;
    use lts_nn::models;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            train: TrainConfig { epochs: 4, batch_size: 32, lr: 0.08, ..TrainConfig::default() },
            fine_tune_epochs: 1,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn baseline_mlp_learns_the_synthetic_task() {
        let data = synth_mnist(256, 96, 3);
        let net = models::mlp(28 * 28, 10, 7).unwrap();
        let out = train_baseline(net, &data, &quick_config()).unwrap();
        assert!(out.test_accuracy > 0.8, "accuracy {}", out.test_accuracy);
    }

    #[test]
    fn sparsified_pipeline_reduces_traffic_and_keeps_accuracy() {
        let data = synth_mnist(256, 96, 4);
        let config = quick_config();
        let baseline =
            train_baseline(models::mlp(28 * 28, 10, 7).unwrap(), &data, &config).unwrap();
        let sparsified = train_sparsified(
            models::mlp(28 * 28, 10, 7).unwrap(),
            &data,
            &config,
            16,
            SparsityScheme::mask(),
            0.004,
            PruneCriterion::SmallestFraction(0.5),
        )
        .unwrap();
        // Pruning actually happened.
        let pruned: usize = sparsified.prune_reports.iter().map(|(_, r)| r.groups_pruned).sum();
        assert!(pruned > 0);
        // Traffic strictly below dense.
        let dense_plan = plan_for(&baseline.network, 16, false, true).unwrap();
        let sparse_plan = plan_for(&sparsified.network, 16, true, true).unwrap();
        assert!(
            sparse_plan.total_traffic_bytes() < dense_plan.total_traffic_bytes(),
            "sparse {} >= dense {}",
            sparse_plan.total_traffic_bytes(),
            dense_plan.total_traffic_bytes()
        );
        // Accuracy within a few points of baseline.
        assert!(
            sparsified.test_accuracy > baseline.test_accuracy - 0.15,
            "sparsified {} vs baseline {}",
            sparsified.test_accuracy,
            baseline.test_accuracy
        );
    }

    #[test]
    fn mask_scheme_produces_distance_weighted_strengths() {
        let ss = strength_mask(16, SparsityScheme::Ss).unwrap();
        assert_eq!(ss.factor(0, 15), ss.factor(0, 1));
        let mask = strength_mask(16, SparsityScheme::mask()).unwrap();
        assert!(mask.factor(0, 15) > mask.factor(0, 1));
        assert_eq!(mask.factor(3, 3), 0.0);
    }

    #[test]
    fn weights_map_covers_all_weight_layers() {
        let net = models::mlp(16, 4, 0).unwrap();
        let map = weights_map(&net, true);
        assert_eq!(map.len(), 3);
        assert_eq!(map["ip1"].len(), 16 * 512);
    }

    #[test]
    fn sparsified_rejects_networks_without_traffic() {
        // A single-layer network reads only the input image.
        let mut rng = lts_tensor::init::rng(0);
        let net = lts_nn::network::NetworkBuilder::new("one", (8, 1, 1))
            .linear("ip1", 4)
            .build(&mut rng)
            .unwrap();
        let data = synth_mnist(16, 8, 0);
        let _ = data; // dims mismatch is irrelevant; config error fires first
        let tiny = TrainTest {
            train: lts_datasets::Dataset::new(
                lts_tensor::Tensor::zeros(lts_tensor::Shape::d4(4, 8, 1, 1)),
                vec![0, 1, 2, 3],
            ),
            test: lts_datasets::Dataset::new(
                lts_tensor::Tensor::zeros(lts_tensor::Shape::d4(4, 8, 1, 1)),
                vec![0, 1, 2, 3],
            ),
        };
        let err = train_sparsified(
            net,
            &tiny,
            &quick_config(),
            16,
            SparsityScheme::Ss,
            0.01,
            PruneCriterion::RmsBelow(0.01),
        );
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
    }
}
