//! One typed request/trial outcome vocabulary shared by the chaos soak
//! ([`crate::chaos`]) and the online serving simulator ([`crate::serve`]).
//!
//! Both harnesses previously grew their own ad-hoc outcome strings; this
//! module replaces them with a single closed enum so aggregate
//! histograms from a chaos soak and a serving run can be compared,
//! merged, and asserted against the same vocabulary.

use serde::{Deserialize, Serialize};

/// How one request (serving) or one trial (chaos soak) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Completed within the latency budget on the healthy system.
    Served,
    /// Completed, but only by riding the online recovery path after a
    /// mid-flight fault (a chaos trial that ends `Ok` is `Recovered`).
    Recovered,
    /// Dropped by admission control or deadline-based load shedding
    /// before any compute was spent on it.
    Shed,
    /// Completed, but after its latency deadline had already passed.
    DeadlineMiss,
    /// The fault set disconnected the mesh: a typed
    /// [`lts_noc::NocError::Unreachable`] ended the run.
    Unreachable,
    /// The simulation watchdog tripped
    /// ([`lts_noc::NocError::CycleLimitExceeded`]).
    CycleLimit,
}

impl Outcome {
    /// Every variant, in display order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Served,
        Outcome::Recovered,
        Outcome::Shed,
        Outcome::DeadlineMiss,
        Outcome::Unreachable,
        Outcome::CycleLimit,
    ];

    /// Stable lowercase label (matches the legacy outcome strings where
    /// one existed: `unreachable`, `cycle-limit`).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Served => "served",
            Outcome::Recovered => "recovered",
            Outcome::Shed => "shed",
            Outcome::DeadlineMiss => "deadline-miss",
            Outcome::Unreachable => "unreachable",
            Outcome::CycleLimit => "cycle-limit",
        }
    }

    /// Whether the request/trial produced a usable result (served or
    /// recovered, on time).
    pub fn is_success(self) -> bool {
        matches!(self, Outcome::Served | Outcome::Recovered)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Aggregate counts over a set of outcomes — the shared shape of a chaos
/// soak's trial histogram and a serving run's request histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeHistogram {
    /// Requests/trials that completed within budget, fault-free.
    pub served: u64,
    /// Completions that rode the recovery path.
    pub recovered: u64,
    /// Requests dropped by admission/deadline shedding.
    pub shed: u64,
    /// Completions past their deadline.
    pub deadline_miss: u64,
    /// Typed mesh-disconnection failures.
    pub unreachable: u64,
    /// Watchdog trips.
    pub cycle_limit: u64,
}

impl OutcomeHistogram {
    /// Increments the bucket for `outcome`.
    pub fn record(&mut self, outcome: Outcome) {
        *self.bucket_mut(outcome) += 1;
    }

    /// The count in `outcome`'s bucket.
    pub fn count(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::Served => self.served,
            Outcome::Recovered => self.recovered,
            Outcome::Shed => self.shed,
            Outcome::DeadlineMiss => self.deadline_miss,
            Outcome::Unreachable => self.unreachable,
            Outcome::CycleLimit => self.cycle_limit,
        }
    }

    /// Sum over every bucket.
    pub fn total(&self) -> u64 {
        Outcome::ALL.iter().map(|&o| self.count(o)).sum()
    }

    /// Successful completions (served + recovered).
    pub fn successes(&self) -> u64 {
        self.served + self.recovered
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&mut self, other: &OutcomeHistogram) {
        for o in Outcome::ALL {
            *self.bucket_mut(o) += other.count(o);
        }
    }

    /// One-line `label=count` rendering (nonzero buckets only, every
    /// bucket when all are zero).
    pub fn render(&self) -> String {
        let parts: Vec<String> = Outcome::ALL
            .iter()
            .filter(|&&o| self.count(o) > 0)
            .map(|&o| format!("{}={}", o.as_str(), self.count(o)))
            .collect();
        if parts.is_empty() {
            "empty".into()
        } else {
            parts.join(" ")
        }
    }

    fn bucket_mut(&mut self, outcome: Outcome) -> &mut u64 {
        match outcome {
            Outcome::Served => &mut self.served,
            Outcome::Recovered => &mut self.recovered,
            Outcome::Shed => &mut self.shed,
            Outcome::DeadlineMiss => &mut self.deadline_miss,
            Outcome::Unreachable => &mut self.unreachable,
            Outcome::CycleLimit => &mut self.cycle_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for o in Outcome::ALL {
            assert!(seen.insert(o.as_str()), "duplicate label {}", o);
        }
        // Legacy chaos strings survive the migration.
        assert_eq!(Outcome::Unreachable.as_str(), "unreachable");
        assert_eq!(Outcome::CycleLimit.as_str(), "cycle-limit");
        assert!(Outcome::Served.is_success());
        assert!(Outcome::Recovered.is_success());
        assert!(!Outcome::Shed.is_success());
        assert!(!Outcome::DeadlineMiss.is_success());
    }

    #[test]
    fn histogram_records_counts_and_merges() {
        let mut h = OutcomeHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.render(), "empty");
        h.record(Outcome::Served);
        h.record(Outcome::Served);
        h.record(Outcome::Shed);
        assert_eq!(h.count(Outcome::Served), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.successes(), 2);
        let mut other = OutcomeHistogram::default();
        other.record(Outcome::Recovered);
        other.record(Outcome::DeadlineMiss);
        h.merge(&other);
        assert_eq!(h.total(), 5);
        assert_eq!(h.successes(), 3);
        assert_eq!(h.render(), "served=2 recovered=1 shed=1 deadline-miss=1");
    }

    #[test]
    fn serde_round_trips() {
        let mut h = OutcomeHistogram::default();
        h.record(Outcome::CycleLimit);
        let json = serde_json::to_string(&(Outcome::Shed, h)).unwrap();
        let (o, back): (Outcome, OutcomeHistogram) = serde_json::from_str(&json).unwrap();
        assert_eq!(o, Outcome::Shed);
        assert_eq!(back, h);
    }
}
