//! Online fault recovery: mid-inference checkpoint, heartbeat-latency
//! detection, incremental replan and resume on the degraded mesh.
//!
//! [`crate::degradation`] answers "how does a strategy perform if the
//! dead cores are known *before* the run?" (the oracle). This module
//! answers the harder online question: a core dies *while* an inference
//! is in flight. The model follows the layer-barrier structure of
//! [`SystemModel`]:
//!
//! 1. **Checkpoints.** At every layer boundary the live state of the
//!    inference is exactly the previous layer's output feature map,
//!    sharded by ownership ([`boundary_checkpoints`] enumerates them).
//!    Nothing extra must be saved — the checkpoint is free.
//! 2. **Detection.** A death at a boundary is noticed either by missed
//!    heartbeats or NIC retransmission exhaustion; the latency comes
//!    from the same [`MonitorConfig`] arithmetic the flit-level
//!    simulator realizes (see `lts_noc::recovery`), so the timeline here
//!    and the in-sim detection agree cycle for cycle.
//! 3. **Replan + resync.** [`lts_partition::replan_from_layer`] reshards
//!    only the remaining layers; the surviving boundary shards are
//!    redistributed over the degraded mesh (simulated flit by flit).
//! 4. **Resume.** The tail runs on the survivors, with every message
//!    remapped through the composed logical→physical core map — faults
//!    may strike more than once, each replan stacking on the last.
//!
//! [`RecoveryReport`] carries the composed run next to the fault-free
//! baseline and the oracle static replan, so the price of *online*
//! recovery (detection latency + resync traffic + mid-run resharding)
//! is measurable directly.

use crate::simcache::SimUsage;
use crate::system::{LayerBreakdown, SystemModel, SystemReport};
use crate::{CoreError, Result};
use lts_nn::descriptor::NetworkSpec;
use lts_noc::traffic::Message;
use lts_noc::{
    FaultModel, FaultStats, McmTopology, MonitorConfig, NocError, Simulator, Topo, Topology,
};
use lts_partition::ownership::{propagate, OwnershipMap};
use lts_partition::{replan, replan_from_layer, McmPlan, Plan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// The free checkpoint at one layer boundary: who holds which slice of
/// the in-flight feature map, and when (cumulatively) the barrier
/// completed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryCheckpoint {
    /// Layers `0..layer` have completed.
    pub layer: usize,
    /// Cumulative cycle of the barrier under the fault-free baseline.
    pub cycle: u64,
    /// `blocks[core]` = feature-map units held by that core.
    pub blocks: Vec<Range<usize>>,
    /// Scalar values per unit (spatial size; 1 for flat activations).
    pub values_per_unit: usize,
}

/// One mid-inference fault: `dead_cores` die at the boundary before
/// layer `layer` (original layer numbering; `0` = before anything ran).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceFault {
    /// First layer that had not run when the cores died.
    pub layer: usize,
    /// Physical core ids killed by this fault.
    pub dead_cores: Vec<usize>,
}

/// One mid-inference *package* fault: every router of each chiplet in
/// `dead_chiplets` dies — together with its interposer seam endpoints —
/// at the boundary before layer `layer` (original layer numbering; `0` =
/// before anything ran).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipletFault {
    /// First layer that had not run when the chiplets died.
    pub layer: usize,
    /// Chiplet ids killed by this fault.
    pub dead_chiplets: Vec<usize>,
}

/// What one recovery cost, on the composed timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Boundary (original layer numbering) the fault hit.
    pub layer: usize,
    /// Cores newly dead at this event (physical, sorted).
    pub dead_cores: Vec<usize>,
    /// Cumulative cycle the cores died at.
    pub died_at: u64,
    /// Cycles from death to detection (worst dead core, heartbeat
    /// deadline arithmetic shared with the NoC simulator).
    pub detection_cycles: u64,
    /// Boundary-resync payload moved over the degraded mesh.
    pub redistribution_bytes: u64,
    /// Flits the resync delivered.
    pub redistribution_flits: u64,
    /// NoC makespan of the resync.
    pub redistribution_cycles: u64,
    /// Boundary units orphaned by the dead cores.
    pub lost_boundary_units: usize,
    /// Total units in the boundary feature map.
    pub boundary_units: usize,
    /// Cores still alive after this event.
    pub survivors: usize,
}

/// End-to-end result of an inference that recovered from mid-run faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The composed run: healthy prefix, per-fault recovery overhead
    /// (one `recovery@N` pseudo-layer each), degraded tail.
    pub report: SystemReport,
    /// The same plan on the fault-free chip.
    pub fault_free: SystemReport,
    /// The oracle: a static [`lts_partition::replan`] over the final
    /// dead set, with the faults known before the run. `None` when the
    /// dead set defeats even the oracle (disconnected mesh).
    pub oracle: Option<SystemReport>,
    /// One entry per applied fault, in order.
    pub events: Vec<RecoveryEvent>,
    /// All dead cores (physical, sorted).
    pub dead_cores: Vec<usize>,
    /// Worst pinned-group output loss across all replans (grouped plans
    /// only; see [`lts_partition::IncrementalPlan::lost_output_fraction`]).
    pub lost_output_fraction: f64,
    /// Worst boundary feature-map loss across all replans.
    pub lost_boundary_fraction: f64,
}

impl RecoveryReport {
    /// End-to-end latency relative to the fault-free run (`1.0` = free).
    pub fn overhead_vs_fault_free(&self) -> f64 {
        if self.fault_free.total_cycles == 0 {
            return 1.0;
        }
        self.report.total_cycles as f64 / self.fault_free.total_cycles as f64
    }

    /// End-to-end latency relative to the oracle static replan — the
    /// pure price of recovering *online* instead of knowing the dead set
    /// up front.
    pub fn overhead_vs_oracle(&self) -> Option<f64> {
        let oracle = self.oracle.as_ref()?;
        if oracle.total_cycles == 0 {
            return None;
        }
        Some(self.report.total_cycles as f64 / oracle.total_cycles as f64)
    }

    /// Simulated-vs-cached NoC work behind the composed run (healthy
    /// segments plus every boundary resync).
    pub fn sim_usage(&self) -> SimUsage {
        self.report.sim
    }

    /// Total cycles spent between deaths and their detections.
    pub fn detection_cycles(&self) -> u64 {
        self.events.iter().map(|e| e.detection_cycles).sum()
    }

    /// Total boundary-resync payload.
    pub fn redistribution_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.redistribution_bytes).sum()
    }

    /// Worst output loss across both loss mechanisms — the bounded
    /// "lost output fraction" the chaos harness asserts on.
    pub fn lost_fraction(&self) -> f64 {
        self.lost_output_fraction.max(self.lost_boundary_fraction)
    }
}

/// Enumerates the free checkpoints of `spec` partitioned over `cores`:
/// one per layer boundary, with the barrier cycle taken from `baseline`
/// (a [`SystemModel::evaluate`] report of the same plan).
///
/// # Panics
///
/// Panics if `baseline` has a different layer count than `spec`.
pub fn boundary_checkpoints(
    spec: &NetworkSpec,
    cores: usize,
    baseline: &SystemReport,
) -> Vec<BoundaryCheckpoint> {
    assert_eq!(baseline.layers.len(), spec.layers.len(), "baseline/spec layer mismatch");
    let mut out = Vec::with_capacity(spec.layers.len());
    let mut ownership: Option<OwnershipMap> = None;
    let mut cycle = 0u64;
    for (i, layer) in spec.layers.iter().enumerate() {
        ownership = propagate(layer, ownership.as_ref(), cores);
        cycle += baseline.layers[i].comm_cycles + baseline.layers[i].compute_cycles;
        let (blocks, values_per_unit) = match &ownership {
            Some(o) => (o.blocks().to_vec(), o.values_per_unit()),
            None => (Vec::new(), 1),
        };
        out.push(BoundaryCheckpoint { layer: i + 1, cycle, blocks, values_per_unit });
    }
    out
}

/// Runs `spec` end to end while `faults` strike mid-inference, detecting
/// each death by heartbeat-deadline arithmetic, incrementally resharding
/// the remaining layers and resuming on the degraded mesh.
///
/// With an empty fault list the composed report is bit-identical to
/// [`SystemModel::evaluate`] on the same plan (and independent of the
/// execution engine's worker count, which the system model never uses).
///
/// Faults must be sorted by `layer` (non-decreasing); a fault may kill
/// several cores at once, and later faults stack on earlier replans.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for unsorted/out-of-range faults or when a
/// fault kills every surviving core; plan and NoC errors propagate
/// (e.g. [`NocError::Unreachable`] when the dead set disconnects the
/// survivors).
pub fn run_with_recovery(
    model: &SystemModel,
    spec: &NetworkSpec,
    weights: &HashMap<String, Vec<f32>>,
    faults: &[InferenceFault],
    monitor: &MonitorConfig,
) -> Result<RecoveryReport> {
    let _probe = lts_obs::span("core.recovery");
    let cores = model.cores();
    let full_plan = Plan::build(spec, cores, weights, 2)?;
    let fault_free = model.evaluate(&full_plan)?;
    monitor.validate(model.noc_config()).map_err(CoreError::Noc)?;
    if faults.is_empty() {
        return Ok(RecoveryReport {
            report: fault_free.clone(),
            fault_free,
            oracle: None,
            events: Vec::new(),
            dead_cores: Vec::new(),
            lost_output_fraction: 0.0,
            lost_boundary_fraction: 0.0,
        });
    }
    for pair in faults.windows(2) {
        if pair[1].layer < pair[0].layer {
            return Err(CoreError::BadConfig("faults must be sorted by layer".into()));
        }
    }
    if let Some(f) = faults.iter().find(|f| f.layer > spec.layers.len()) {
        return Err(CoreError::BadConfig(format!(
            "fault layer {} beyond the network's {} layers",
            f.layer,
            spec.layers.len()
        )));
    }
    if let Some(&bad) = faults.iter().flat_map(|f| &f.dead_cores).find(|&&d| d >= cores) {
        return Err(CoreError::BadConfig(format!(
            "dead core {bad} out of range for {cores} cores"
        )));
    }

    // Composed-run accumulators.
    let mut acc = Accumulator::default();
    // Current logical→physical map, remaining plan/spec, and progress.
    let mut current_map: Vec<usize> = (0..cores).collect();
    let mut current_plan = full_plan;
    let mut current_spec = spec.clone();
    let mut plan_start = 0usize; // original index of current_plan.layers[0]
    let mut completed = 0usize; // original layers finished so far
    let mut dead_all: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    let mut lost_output_fraction = 0.0f64;
    let mut lost_boundary_fraction = 0.0f64;

    for fault in faults {
        // Healthy-for-now segment up to the fault boundary.
        let seg = &current_plan.layers[completed - plan_start..fault.layer - plan_start];
        let seg_model = model.clone().with_fault_model(kill_set(&dead_all));
        acc.push_segment(seg_model.evaluate_layers(seg, Some(&current_map))?);
        completed = fault.layer;

        // Which of the named cores are actually newly dead?
        let mut newly: Vec<usize> =
            fault.dead_cores.iter().copied().filter(|d| current_map.contains(d)).collect();
        newly.sort_unstable();
        newly.dedup();
        if newly.is_empty() {
            continue;
        }
        let died_at = acc.total_cycles;
        let detection_cycles = newly
            .iter()
            .map(|&n| monitor.detection_latency(model.noc_config(), n, died_at))
            .max()
            .unwrap_or(0);

        // Incremental replan in the *current* logical space.
        let logical_dead: Vec<usize> = current_map
            .iter()
            .enumerate()
            .filter_map(|(l, p)| newly.contains(p).then_some(l))
            .collect();
        let inc = {
            let _replan_probe = lts_obs::span("core.recovery.replan");
            replan_from_layer(
                &current_spec,
                current_map.len(),
                fault.layer - plan_start,
                &logical_dead,
                weights,
                2,
            )?
        };
        lost_output_fraction = lost_output_fraction.max(inc.lost_output_fraction());
        lost_boundary_fraction = lost_boundary_fraction.max(inc.lost_boundary_fraction());

        // Boundary resync on the now-degraded mesh (physical endpoints).
        dead_all.extend(&newly);
        dead_all.sort_unstable();
        let resync: Vec<Message> = inc
            .redistribution
            .messages
            .iter()
            .map(|m| Message::new(current_map[m.src], current_map[m.dst], m.bytes, m.inject_cycle))
            .collect();
        let (resync_report, resync_energy) = if resync.is_empty() {
            (None, 0.0)
        } else {
            let _resync_probe = lts_obs::span("core.recovery.resync");
            let fault = kill_set(&dead_all);
            let mut sim = Simulator::with_faults(*model.noc_config(), fault.clone())
                .map_err(CoreError::Noc)?;
            let rep = crate::simcache::run_cached(
                &mut sim,
                model.noc_config(),
                &fault,
                &resync,
                &mut acc.sim,
            )
            .map_err(CoreError::Noc)?;
            let energy = model.noc_total_energy_pj(&rep);
            (Some(rep), energy)
        };
        let (resync_cycles, resync_flits, resync_stats) = match &resync_report {
            Some(r) => (r.makespan, r.flits_delivered, r.faults),
            None => (0, 0, FaultStats::default()),
        };
        if let Some(r) = &resync_report {
            acc.intra_chip_traversals += r.intra_chip_traversals;
            acc.inter_chip_traversals += r.inter_chip_traversals;
        }

        // The recovery pseudo-layer: detection wait + resync makespan.
        let overhead = detection_cycles + resync_cycles;
        let resync_bytes = inc.redistribution_bytes;
        acc.push_overhead(LayerBreakdown {
            name: format!("recovery@{}", fault.layer),
            compute_cycles: 0,
            comm_cycles: overhead,
            traffic_bytes: resync_bytes,
            compute_energy_pj: 0.0,
            noc_energy_pj: resync_energy,
            blocked_flit_cycles: resync_report.as_ref().map_or(0, |r| r.blocked_flit_cycles),
        });
        acc.faults.merge(&resync_stats);

        if lts_obs::enabled() {
            let track = lts_obs::cycle_track_named("core.recovery");
            let at = format!("layer{}", fault.layer);
            lts_obs::cycle_record(track, "detect", &at, detection_cycles);
            lts_obs::cycle_record(track, "resync", &at, resync_cycles);
            lts_obs::counter_add("recovery.events", 1);
            lts_obs::counter_add("recovery.detection_cycles", detection_cycles);
            lts_obs::counter_add("recovery.redistribution_cycles", resync_cycles);
            lts_obs::counter_add("recovery.redistribution_bytes", resync_bytes);
        }

        events.push(RecoveryEvent {
            layer: fault.layer,
            dead_cores: newly,
            died_at,
            detection_cycles,
            redistribution_bytes: resync_bytes,
            redistribution_flits: resync_flits,
            redistribution_cycles: resync_cycles,
            lost_boundary_units: inc.lost_boundary_units,
            boundary_units: inc.boundary_units,
            survivors: inc.survivors(),
        });

        // Stack the replan: compose maps, adopt the tail.
        current_map = inc.core_map.iter().map(|&l| current_map[l]).collect();
        current_plan = inc.tail;
        current_spec = NetworkSpec {
            name: current_spec.name.clone(),
            input: if fault.layer == 0 {
                spec.input
            } else {
                spec.layers[fault.layer - 1].out_dims
            },
            layers: spec.layers[fault.layer..].to_vec(),
        };
        plan_start = fault.layer;
    }

    // The surviving tail.
    let seg = &current_plan.layers[completed - plan_start..];
    let seg_model = model.clone().with_fault_model(kill_set(&dead_all));
    acc.push_segment(seg_model.evaluate_layers(seg, Some(&current_map))?);

    // The oracle knew the final dead set before starting.
    let oracle = match replan(spec, cores, &dead_all, weights, 2) {
        Ok(degraded) => {
            match model.clone().with_fault_model(kill_set(&dead_all)).evaluate_degraded(&degraded) {
                Ok(r) => Some(r),
                Err(CoreError::Noc(
                    NocError::Unreachable { .. } | NocError::CycleLimitExceeded { .. },
                )) => None,
                Err(e) => return Err(e),
            }
        }
        Err(_) => None,
    };

    Ok(RecoveryReport {
        report: acc.into_report(),
        fault_free,
        oracle,
        events,
        dead_cores: dead_all,
        lost_output_fraction,
        lost_boundary_fraction,
    })
}

/// Runs `spec` end to end on an MCM package while whole chiplets die
/// mid-inference — the package-level analogue of [`run_with_recovery`].
///
/// Each death is noticed hierarchically: per-router heartbeat deadlines
/// (seam-priced when the monitor sits on another chiplet) aggregate to a
/// chiplet-liveness verdict — `MonitorConfig::chiplet_detection_latency`
/// declares the chiplet dead only once *every* member router's deadline
/// has lapsed, so a slow seam alone never triggers a replan. Then the
/// remaining layers are re-staged over the survivor chiplets
/// ([`McmPlan::replan_from_layer`]: fewer, fatter stages, transition
/// traffic re-priced over the new seam distances) and the surviving
/// boundary shard resyncs over the degraded package. The composed report
/// carries one `recovery@N` pseudo-layer per fault next to the
/// fault-free baseline and the oracle static replan
/// ([`McmPlan::replan_without_chiplets`] with the final dead set known
/// up front).
///
/// With an empty fault list the composed report is bit-identical to
/// [`SystemModel::evaluate`] on the healthy [`McmPlan`].
///
/// MCM replans regenerate every per-stage layout from scratch, so no
/// pinned-group output is ever lost: `lost_output_fraction` is always
/// `0.0` here and the only loss mechanism is the orphaned boundary shard
/// of a dead producer chiplet (`lost_boundary_fraction`).
///
/// # Errors
///
/// [`CoreError::BadConfig`] when the model is not an MCM package, for
/// unsorted/out-of-range faults, or when a fault kills every surviving
/// chiplet; plan and NoC errors propagate (e.g.
/// [`NocError::Unreachable`] when the dead set disconnects the package).
pub fn run_with_recovery_chiplets(
    model: &SystemModel,
    spec: &NetworkSpec,
    weights: &HashMap<String, Vec<f32>>,
    faults: &[ChipletFault],
    monitor: &MonitorConfig,
) -> Result<RecoveryReport> {
    let _probe = lts_obs::span("core.recovery_chiplets");
    let Topo::Mcm(topo) = model.noc_config().topo() else {
        return Err(CoreError::BadConfig(
            "chiplet recovery requires an MCM package topology".into(),
        ));
    };
    let chiplets = Topology::chiplets(&topo);
    let full_plan = McmPlan::build(spec, &topo, weights, 2)?;
    let fault_free = model.evaluate(&full_plan.plan)?;
    monitor.validate(model.noc_config()).map_err(CoreError::Noc)?;
    if faults.is_empty() {
        return Ok(RecoveryReport {
            report: fault_free.clone(),
            fault_free,
            oracle: None,
            events: Vec::new(),
            dead_cores: Vec::new(),
            lost_output_fraction: 0.0,
            lost_boundary_fraction: 0.0,
        });
    }
    for pair in faults.windows(2) {
        if pair[1].layer < pair[0].layer {
            return Err(CoreError::BadConfig("faults must be sorted by layer".into()));
        }
    }
    if let Some(f) = faults.iter().find(|f| f.layer > spec.layers.len()) {
        return Err(CoreError::BadConfig(format!(
            "fault layer {} beyond the network's {} layers",
            f.layer,
            spec.layers.len()
        )));
    }
    if let Some(&bad) = faults.iter().flat_map(|f| &f.dead_chiplets).find(|&&c| c >= chiplets) {
        return Err(CoreError::BadConfig(format!(
            "dead chiplet {bad} out of range for a {chiplets}-chiplet package"
        )));
    }

    // Composed-run accumulators. Unlike the flat path, MCM plans carry
    // *physical* node ids throughout (dead chiplets simply hold no
    // assignments), so there is no logical→physical map to compose.
    let mut acc = Accumulator::default();
    let mut current_plan = full_plan;
    let mut current_spec = spec.clone();
    let mut plan_start = 0usize; // original index of current_plan's first layer
    let mut completed = 0usize; // original layers finished so far
    let mut dead_chips: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    let mut lost_boundary_fraction = 0.0f64;

    for fault in faults {
        // Healthy-for-now segment up to the fault boundary.
        let seg = &current_plan.plan.layers[completed - plan_start..fault.layer - plan_start];
        let seg_model = model.clone().with_fault_model(kill_chiplet_set(&topo, &dead_chips));
        acc.push_segment(seg_model.evaluate_layers(seg, None)?);
        completed = fault.layer;

        let mut newly: Vec<usize> =
            fault.dead_chiplets.iter().copied().filter(|c| !dead_chips.contains(c)).collect();
        newly.sort_unstable();
        newly.dedup();
        if newly.is_empty() {
            continue;
        }
        let died_at = acc.total_cycles;
        // Hierarchical detection: per-router heartbeat verdicts aggregate
        // to the chiplet level — the worst member router of the worst
        // newly-dead chiplet sets the replan trigger.
        let detection_cycles = newly
            .iter()
            .map(|&c| monitor.chiplet_detection_latency(model.noc_config(), &topo, c, died_at))
            .max()
            .unwrap_or(0);

        // Replan over the *cumulative* dead set: the tail's stage order
        // is the serpentine sequence minus every chiplet lost so far.
        dead_chips.extend(&newly);
        dead_chips.sort_unstable();
        let inc = {
            let _replan_probe = lts_obs::span("core.recovery.replan");
            current_plan.replan_from_layer(
                &current_spec,
                &topo,
                fault.layer - plan_start,
                &dead_chips,
                weights,
                2,
            )?
        };
        lost_boundary_fraction = lost_boundary_fraction.max(inc.lost_boundary_fraction());

        // Boundary resync on the degraded package (endpoints are already
        // physical node ids, straight from the incremental plan).
        let resync = inc.redistribution.messages.clone();
        let (resync_report, resync_energy) = if resync.is_empty() {
            (None, 0.0)
        } else {
            let _resync_probe = lts_obs::span("core.recovery.resync");
            let fault_model = kill_chiplet_set(&topo, &dead_chips);
            let mut sim = Simulator::with_faults(*model.noc_config(), fault_model.clone())
                .map_err(CoreError::Noc)?;
            let rep = crate::simcache::run_cached(
                &mut sim,
                model.noc_config(),
                &fault_model,
                &resync,
                &mut acc.sim,
            )
            .map_err(CoreError::Noc)?;
            let energy = model.noc_total_energy_pj(&rep);
            (Some(rep), energy)
        };
        let (resync_cycles, resync_flits, resync_stats) = match &resync_report {
            Some(r) => (r.makespan, r.flits_delivered, r.faults),
            None => (0, 0, FaultStats::default()),
        };
        if let Some(r) = &resync_report {
            acc.intra_chip_traversals += r.intra_chip_traversals;
            acc.inter_chip_traversals += r.inter_chip_traversals;
        }

        let overhead = detection_cycles + resync_cycles;
        let resync_bytes = inc.redistribution_bytes;
        acc.push_overhead(LayerBreakdown {
            name: format!("recovery@{}", fault.layer),
            compute_cycles: 0,
            comm_cycles: overhead,
            traffic_bytes: resync_bytes,
            compute_energy_pj: 0.0,
            noc_energy_pj: resync_energy,
            blocked_flit_cycles: resync_report.as_ref().map_or(0, |r| r.blocked_flit_cycles),
        });
        acc.faults.merge(&resync_stats);

        if lts_obs::enabled() {
            let track = lts_obs::cycle_track_named("core.recovery");
            let at = format!("layer{}", fault.layer);
            lts_obs::cycle_record(track, "detect", &at, detection_cycles);
            lts_obs::cycle_record(track, "resync", &at, resync_cycles);
            lts_obs::counter_add("recovery.events", 1);
            lts_obs::counter_add("recovery.detection_cycles", detection_cycles);
            lts_obs::counter_add("recovery.redistribution_cycles", resync_cycles);
            lts_obs::counter_add("recovery.redistribution_bytes", resync_bytes);
        }

        let mut member_dead: Vec<usize> =
            newly.iter().flat_map(|&c| topo.chiplet_nodes(c)).collect();
        member_dead.sort_unstable();
        events.push(RecoveryEvent {
            layer: fault.layer,
            dead_cores: member_dead,
            died_at,
            detection_cycles,
            redistribution_bytes: resync_bytes,
            redistribution_flits: resync_flits,
            redistribution_cycles: resync_cycles,
            lost_boundary_units: inc.lost_boundary_units,
            boundary_units: inc.boundary_units,
            survivors: inc.survivors() * topo.nodes_per_chiplet(),
        });

        // Adopt the re-staged tail.
        current_plan = inc.tail;
        current_spec = NetworkSpec {
            name: current_spec.name.clone(),
            input: if fault.layer == 0 {
                spec.input
            } else {
                spec.layers[fault.layer - 1].out_dims
            },
            layers: spec.layers[fault.layer..].to_vec(),
        };
        plan_start = fault.layer;
    }

    // The surviving tail.
    let seg = &current_plan.plan.layers[completed - plan_start..];
    let seg_model = model.clone().with_fault_model(kill_chiplet_set(&topo, &dead_chips));
    acc.push_segment(seg_model.evaluate_layers(seg, None)?);

    // The oracle knew the final dead chiplet set before starting.
    let oracle = match McmPlan::replan_without_chiplets(spec, &topo, &dead_chips, weights, 2) {
        Ok(replanned) => {
            match model
                .clone()
                .with_fault_model(kill_chiplet_set(&topo, &dead_chips))
                .evaluate(&replanned.plan)
            {
                Ok(r) => Some(r),
                Err(CoreError::Noc(
                    NocError::Unreachable { .. } | NocError::CycleLimitExceeded { .. },
                )) => None,
                Err(e) => return Err(e),
            }
        }
        Err(_) => None,
    };

    let mut dead_cores: Vec<usize> =
        dead_chips.iter().flat_map(|&c| topo.chiplet_nodes(c)).collect();
    dead_cores.sort_unstable();
    Ok(RecoveryReport {
        report: acc.into_report(),
        fault_free,
        oracle,
        events,
        dead_cores,
        lost_output_fraction: 0.0,
        lost_boundary_fraction,
    })
}

/// A fault model with exactly `dead` routers killed.
fn kill_set(dead: &[usize]) -> FaultModel {
    dead.iter().fold(FaultModel::none(), |f, &d| f.kill_router(d))
}

/// The fault model of whole-chiplet losses: every member router plus
/// every interposer seam endpoint of each chiplet in `dead`.
pub(crate) fn kill_chiplet_set(topo: &McmTopology, dead: &[usize]) -> FaultModel {
    dead.iter().fold(FaultModel::none(), |f, &c| f.kill_chiplet(topo, c))
}

/// Builds the composed [`SystemReport`] incrementally.
#[derive(Default)]
struct Accumulator {
    total_cycles: u64,
    compute_cycles: u64,
    comm_cycles: u64,
    traffic_bytes: u64,
    compute_energy_pj: f64,
    noc_energy_pj: f64,
    faults: FaultStats,
    sim: SimUsage,
    intra_chip_traversals: u64,
    inter_chip_traversals: u64,
    layers: Vec<LayerBreakdown>,
}

impl Accumulator {
    fn push_segment(&mut self, seg: SystemReport) {
        self.total_cycles += seg.total_cycles;
        self.compute_cycles += seg.compute_cycles;
        self.comm_cycles += seg.comm_cycles;
        self.traffic_bytes += seg.traffic_bytes;
        self.compute_energy_pj += seg.compute_energy_pj;
        self.noc_energy_pj += seg.noc_energy_pj;
        self.faults.merge(&seg.faults);
        self.sim.merge(&seg.sim);
        self.intra_chip_traversals += seg.intra_chip_traversals;
        self.inter_chip_traversals += seg.inter_chip_traversals;
        self.layers.extend(seg.layers);
    }

    fn push_overhead(&mut self, layer: LayerBreakdown) {
        self.total_cycles += layer.comm_cycles + layer.compute_cycles;
        self.comm_cycles += layer.comm_cycles;
        self.compute_cycles += layer.compute_cycles;
        self.traffic_bytes += layer.traffic_bytes;
        self.compute_energy_pj += layer.compute_energy_pj;
        self.noc_energy_pj += layer.noc_energy_pj;
        self.layers.push(layer);
    }

    fn into_report(self) -> SystemReport {
        SystemReport {
            total_cycles: self.total_cycles,
            compute_cycles: self.compute_cycles,
            comm_cycles: self.comm_cycles,
            traffic_bytes: self.traffic_bytes,
            compute_energy_pj: self.compute_energy_pj,
            noc_energy_pj: self.noc_energy_pj,
            faults: self.faults,
            sim: self.sim,
            intra_chip_traversals: self.intra_chip_traversals,
            inter_chip_traversals: self.inter_chip_traversals,
            layers: self.layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::lenet_spec;

    fn model() -> SystemModel {
        SystemModel::paper(16).unwrap()
    }

    fn no_weights() -> HashMap<String, Vec<f32>> {
        HashMap::new()
    }

    #[test]
    fn empty_fault_list_is_bit_identical_to_evaluate() {
        let spec = lenet_spec();
        let m = model();
        let plain = m.evaluate(&Plan::dense(&spec, 16, 2).unwrap()).unwrap();
        let rec =
            run_with_recovery(&m, &spec, &no_weights(), &[], &MonitorConfig::default()).unwrap();
        assert_eq!(rec.report, plain);
        assert!(rec.events.is_empty());
        assert_eq!(rec.overhead_vs_fault_free(), 1.0);
        assert_eq!(rec.lost_fraction(), 0.0);
    }

    #[test]
    fn mid_inference_death_recovers_and_pays_a_measurable_overhead() {
        let spec = lenet_spec();
        let m = model();
        let faults = [InferenceFault { layer: 3, dead_cores: vec![5] }];
        let rec = run_with_recovery(&m, &spec, &no_weights(), &faults, &MonitorConfig::default())
            .unwrap();
        assert_eq!(rec.events.len(), 1);
        let e = &rec.events[0];
        assert_eq!(e.layer, 3);
        assert_eq!(e.dead_cores, vec![5]);
        assert!(e.detection_cycles > 0, "heartbeat detection takes time");
        assert!(e.redistribution_bytes > 0, "survivors must resync the boundary");
        assert!(e.redistribution_cycles > 0);
        assert_eq!(e.survivors, 15);
        assert!(rec.overhead_vs_fault_free() > 1.0, "recovery is never free");
        // The recovery pseudo-layer shows up on the composed timeline.
        assert!(rec.report.layers.iter().any(|l| l.name == "recovery@3"));
        assert_eq!(rec.report.layers.len(), spec.layers.len() + 1);
        // Dense plans lose no accuracy, only the boundary share of a
        // feature map that dense resharding recomputes... which it
        // cannot: the orphaned units are reported.
        assert_eq!(rec.lost_output_fraction, 0.0);
        assert!(rec.lost_boundary_fraction > 0.0);
        assert!(rec.lost_fraction() <= 1.0);
    }

    #[test]
    fn online_recovery_costs_more_than_the_oracle() {
        let spec = lenet_spec();
        let m = model();
        let faults = [InferenceFault { layer: 2, dead_cores: vec![6, 9] }];
        let rec = run_with_recovery(&m, &spec, &no_weights(), &faults, &MonitorConfig::default())
            .unwrap();
        let oracle_overhead = rec.overhead_vs_oracle().expect("oracle survives 2 deaths");
        assert!(
            oracle_overhead > 1.0,
            "online recovery (detection + resync) must cost more than foreknowledge"
        );
        assert_eq!(rec.dead_cores, vec![6, 9]);
    }

    #[test]
    fn stacked_faults_compose_the_core_map() {
        let spec = lenet_spec();
        let m = model();
        let faults = [
            InferenceFault { layer: 2, dead_cores: vec![3] },
            InferenceFault { layer: 5, dead_cores: vec![11, 3] }, // 3 already dead
        ];
        let rec = run_with_recovery(&m, &spec, &no_weights(), &faults, &MonitorConfig::default())
            .unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].survivors, 15);
        assert_eq!(rec.events[1].dead_cores, vec![11], "re-killing a dead core is a no-op");
        assert_eq!(rec.events[1].survivors, 14);
        assert_eq!(rec.dead_cores, vec![3, 11]);
        assert!(rec.events[1].died_at > rec.events[0].died_at);
    }

    #[test]
    fn fault_before_the_first_layer_restarts_on_survivors() {
        let spec = lenet_spec();
        let m = model();
        let faults = [InferenceFault { layer: 0, dead_cores: vec![7] }];
        let rec = run_with_recovery(&m, &spec, &no_weights(), &faults, &MonitorConfig::default())
            .unwrap();
        let e = &rec.events[0];
        assert_eq!(e.died_at, 0);
        assert_eq!(e.redistribution_bytes, 0, "no feature map exists yet");
        assert_eq!(e.boundary_units, 0);
        assert_eq!(rec.lost_boundary_fraction, 0.0);
        // Aside from detection latency, this is the oracle's run.
        let oracle = rec.oracle.as_ref().unwrap();
        assert_eq!(rec.report.total_cycles, oracle.total_cycles + e.detection_cycles);
    }

    #[test]
    fn invalid_fault_lists_are_rejected() {
        let spec = lenet_spec();
        let m = model();
        let mon = MonitorConfig::default();
        let unsorted = [
            InferenceFault { layer: 4, dead_cores: vec![1] },
            InferenceFault { layer: 2, dead_cores: vec![2] },
        ];
        assert!(run_with_recovery(&m, &spec, &no_weights(), &unsorted, &mon).is_err());
        let oob_layer = [InferenceFault { layer: 99, dead_cores: vec![1] }];
        assert!(run_with_recovery(&m, &spec, &no_weights(), &oob_layer, &mon).is_err());
        let oob_core = [InferenceFault { layer: 1, dead_cores: vec![16] }];
        assert!(run_with_recovery(&m, &spec, &no_weights(), &oob_core, &mon).is_err());
        let wipeout = [InferenceFault { layer: 1, dead_cores: (0..16).collect() }];
        assert!(run_with_recovery(&m, &spec, &no_weights(), &wipeout, &mon).is_err());
    }

    #[test]
    fn checkpoints_cover_every_boundary_and_sum_to_the_total() {
        let spec = lenet_spec();
        let m = model();
        let baseline = m.evaluate(&Plan::dense(&spec, 16, 2).unwrap()).unwrap();
        let cps = boundary_checkpoints(&spec, 16, &baseline);
        assert_eq!(cps.len(), spec.layers.len());
        assert_eq!(cps.last().unwrap().cycle, baseline.total_cycles);
        for cp in &cps {
            let held: usize = cp.blocks.iter().map(|b| b.len()).sum();
            if !cp.blocks.is_empty() {
                assert!(held > 0, "boundary {} holds no state", cp.layer);
            }
        }
        // The conv1 boundary shards 20 channels of 24x24 activations.
        assert_eq!(cps[0].blocks.iter().map(|b| b.len()).sum::<usize>(), 20);
        assert_eq!(cps[0].values_per_unit, 24 * 24);
    }

    #[test]
    fn recovery_is_deterministic() {
        let spec = lenet_spec();
        let m = model();
        let faults = [InferenceFault { layer: 4, dead_cores: vec![2, 13] }];
        let mon = MonitorConfig::default();
        let a = run_with_recovery(&m, &spec, &no_weights(), &faults, &mon).unwrap();
        let b = run_with_recovery(&m, &spec, &no_weights(), &faults, &mon).unwrap();
        assert_eq!(a, b);
    }

    /// A 2x2 package grid of 2x2 chiplets (16 cores total).
    fn mcm_model() -> SystemModel {
        SystemModel::paper_mcm(4, 4).unwrap()
    }

    fn package_of(m: &SystemModel) -> McmTopology {
        match m.noc_config().topo() {
            Topo::Mcm(t) => t,
            Topo::Mesh(_) => panic!("expected an MCM package"),
        }
    }

    #[test]
    fn chiplet_faults_require_a_package_topology() {
        let spec = lenet_spec();
        let faults = [ChipletFault { layer: 2, dead_chiplets: vec![1] }];
        let err = run_with_recovery_chiplets(
            &model(),
            &spec,
            &no_weights(),
            &faults,
            &MonitorConfig::default(),
        );
        assert!(err.is_err(), "a flat mesh has no chiplets to kill");
    }

    #[test]
    fn empty_chiplet_fault_list_is_bit_identical_to_the_mcm_evaluation() {
        let spec = lenet_spec();
        let m = mcm_model();
        let topo = package_of(&m);
        let plan = McmPlan::build(&spec, &topo, &no_weights(), 2).unwrap();
        let plain = m.evaluate(&plan.plan).unwrap();
        let rec =
            run_with_recovery_chiplets(&m, &spec, &no_weights(), &[], &MonitorConfig::default())
                .unwrap();
        assert_eq!(rec.report, plain);
        assert!(rec.events.is_empty());
        assert_eq!(rec.overhead_vs_fault_free(), 1.0);
        assert_eq!(rec.lost_fraction(), 0.0);
    }

    #[test]
    fn mid_inference_chiplet_death_restages_onto_the_survivors() {
        let spec = lenet_spec();
        let m = mcm_model();
        let topo = package_of(&m);
        let faults = [ChipletFault { layer: 3, dead_chiplets: vec![1] }];
        let rec = run_with_recovery_chiplets(
            &m,
            &spec,
            &no_weights(),
            &faults,
            &MonitorConfig::default(),
        )
        .unwrap();
        assert_eq!(rec.events.len(), 1);
        let e = &rec.events[0];
        assert_eq!(e.layer, 3);
        assert_eq!(e.dead_cores, topo.chiplet_nodes(1), "a chiplet death is its member routers");
        assert!(e.detection_cycles > 0, "hierarchical detection takes time");
        assert_eq!(e.survivors, 12, "three chiplets of four cores survive");
        assert!(rec.overhead_vs_fault_free() > 1.0, "recovery is never free");
        assert!(rec.report.layers.iter().any(|l| l.name == "recovery@3"));
        assert_eq!(rec.report.layers.len(), spec.layers.len() + 1);
        assert_eq!(rec.dead_cores, topo.chiplet_nodes(1));
        // MCM replans regenerate every layout: only boundary loss exists,
        // and a surviving producer chiplet means none at all is forced.
        assert_eq!(rec.lost_output_fraction, 0.0);
        assert!(rec.lost_fraction() <= 1.0);
        // The oracle static replan over the survivor set is viable and
        // cheaper than recovering online.
        let oracle = rec.overhead_vs_oracle().expect("3 survivor chiplets carry the network");
        assert!(oracle > 1.0, "online recovery must cost more than foreknowledge");
    }

    #[test]
    fn stacked_chiplet_faults_accumulate_the_dead_set() {
        let spec = lenet_spec();
        let m = mcm_model();
        let topo = package_of(&m);
        let faults = [
            ChipletFault { layer: 2, dead_chiplets: vec![3] },
            ChipletFault { layer: 4, dead_chiplets: vec![1, 3] }, // 3 already dead
        ];
        let rec = run_with_recovery_chiplets(
            &m,
            &spec,
            &no_weights(),
            &faults,
            &MonitorConfig::default(),
        )
        .unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].survivors, 12);
        assert_eq!(
            rec.events[1].dead_cores,
            topo.chiplet_nodes(1),
            "re-killing a dead chiplet is a no-op"
        );
        assert_eq!(rec.events[1].survivors, 8);
        let mut expected: Vec<usize> = topo.chiplet_nodes(1);
        expected.extend(topo.chiplet_nodes(3));
        expected.sort_unstable();
        assert_eq!(rec.dead_cores, expected);
        assert!(rec.events[1].died_at > rec.events[0].died_at);
    }

    #[test]
    fn invalid_chiplet_fault_lists_are_rejected() {
        let spec = lenet_spec();
        let m = mcm_model();
        let mon = MonitorConfig::default();
        let unsorted = [
            ChipletFault { layer: 4, dead_chiplets: vec![1] },
            ChipletFault { layer: 2, dead_chiplets: vec![2] },
        ];
        assert!(run_with_recovery_chiplets(&m, &spec, &no_weights(), &unsorted, &mon).is_err());
        let oob_layer = [ChipletFault { layer: 99, dead_chiplets: vec![1] }];
        assert!(run_with_recovery_chiplets(&m, &spec, &no_weights(), &oob_layer, &mon).is_err());
        let oob_chiplet = [ChipletFault { layer: 1, dead_chiplets: vec![4] }];
        assert!(run_with_recovery_chiplets(&m, &spec, &no_weights(), &oob_chiplet, &mon).is_err());
        let wipeout = [ChipletFault { layer: 1, dead_chiplets: (0..4).collect() }];
        assert!(run_with_recovery_chiplets(&m, &spec, &no_weights(), &wipeout, &mon).is_err());
    }

    #[test]
    fn chiplet_recovery_is_bit_identical_across_cache_temperature() {
        let spec = lenet_spec();
        let m = mcm_model();
        let faults = [ChipletFault { layer: 4, dead_chiplets: vec![2] }];
        let mon = MonitorConfig::default();
        let a = run_with_recovery_chiplets(&m, &spec, &no_weights(), &faults, &mon).unwrap();
        crate::simcache::reset();
        let b = run_with_recovery_chiplets(&m, &spec, &no_weights(), &faults, &mon).unwrap();
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fault_free, b.fault_free);
        assert_eq!(a.oracle.map(|r| r.total_cycles), b.oracle.map(|r| r.total_cycles));
    }
}
