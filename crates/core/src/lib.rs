//! Learn-to-Scale: communication-aware parallelization of single-pass CNN
//! inference on chip multiprocessors.
//!
//! This crate is the paper's contribution proper, assembled from the
//! substrate crates:
//!
//! * [`strategy`] — the three parallelization strategies (§IV):
//!   traditional, structure-level (grouping), and communication-aware
//!   sparsified (SS / SS_Mask);
//! * [`pipeline`] — the train → sparsify → prune → fine-tune → quantize
//!   flow that produces CMP-friendly models;
//! * [`precision`] — the f32/i16 deployment-precision knob shared by the
//!   pipelines, the communication-volume model and the benches;
//! * [`system`] — the end-to-end system model: per-layer accelerator
//!   compute latency ([`lts_accel`]) plus flit-level NoC simulation of the
//!   layer-transition bursts ([`lts_noc`]), combined under a barrier
//!   schedule;
//! * [`experiment`] — one runner per table/figure of the evaluation
//!   section (Tables I, III–VI; Figs. 6–8; the §III motivation claim);
//! * [`degradation`] — the fail-operational extension: fault rate ×
//!   core-failure sweeps over all three strategies on a faulty mesh;
//! * [`chaos`] — the chaos soak: randomized mid-flight fault schedules
//!   against the online recovery path, asserting bounded output loss or
//!   a typed error — never a panic or hang;
//! * [`mcm`] — multi-chip-module scale-out: chiplet-count sweeps that
//!   pit stage-pipelined [`lts_partition::McmPlan`] schedules against
//!   whole-network replication for package throughput;
//! * [`simcache`] — cross-sweep NoC simulation memoization: repeated
//!   (config, fault model, trace) triples return the cached, bit-identical
//!   report instead of re-stepping the simulator;
//! * [`recovery`] — *online* fault recovery: mid-inference core deaths
//!   detected by heartbeat-deadline arithmetic, incrementally resharded
//!   with [`lts_partition::replan_from_layer`] and resumed on the
//!   degraded mesh, measured against the oracle static replan;
//! * [`serve`] — fail-operational online serving: seeded open-loop
//!   request streams, bounded-queue admission with deadline shedding,
//!   layer-group pipelining, SLO-driven strategy switching with
//!   hysteresis, and graceful degradation under mid-stream faults;
//! * [`outcome`] — the typed request/trial outcome vocabulary shared by
//!   the chaos soak and the serving simulator;
//! * [`report`] — ASCII rendering of tables and weight-group matrices.
//!
//! # Examples
//!
//! ```no_run
//! use lts_core::experiment::{table1_rows, EffortPreset};
//!
//! # fn main() -> Result<(), lts_core::CoreError> {
//! for row in table1_rows(16)? {
//!     println!("{}: {} bytes total", row.network, row.total());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chaos;
pub mod degradation;
pub mod error;
pub mod experiment;
pub mod interlayer;
pub mod mcm;
pub mod outcome;
pub mod pipeline;
pub mod precision;
pub mod recovery;
pub mod report;
pub mod serve;
pub mod simcache;
pub mod strategy;
pub mod system;

pub use chaos::{chaos_soak, outcome_histogram, ChaosConfig, ChaosRow};
pub use degradation::{fault_sweep, workloads, FaultSweepConfig, FaultSweepRow, Workload};
pub use error::CoreError;
pub use mcm::{scale_chiplets, McmScalingRow, ScaleMode};
pub use outcome::{Outcome, OutcomeHistogram};
pub use precision::Precision;
pub use recovery::{
    boundary_checkpoints, run_with_recovery, run_with_recovery_chiplets, BoundaryCheckpoint,
    ChipletFault, InferenceFault, RecoveryEvent, RecoveryReport,
};
pub use serve::{
    chiplet_stream_fault, run_serving, service_capacity_rpmc, ArrivalConfig, ArrivalProcess,
    ControllerConfig, ControllerEvent, ServingConfig, ServingReport, ServingStrategy, StreamFault,
};
pub use simcache::SimCacheStats;
pub use strategy::{SparsityScheme, Strategy};
pub use system::{SystemModel, SystemReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
