//! Fail-operational online serving: a deterministic discrete-event
//! simulator that drives the end-to-end system model with an open-loop
//! request stream and keeps it predictable under overload and faults.
//!
//! The pieces, front to back:
//!
//! * **Arrivals** ([`ArrivalProcess`]) — seeded Poisson or two-state
//!   MMPP burst streams, drawn from the same splitmix64 hash stream the
//!   chaos soak uses, so a `(process, seed, horizon)` triple always
//!   produces the same request times regardless of `LTS_THREADS`.
//! * **Admission** — a bounded FIFO queue. Arrivals that find the queue
//!   full are shed immediately ([`Outcome::Shed`]).
//! * **Batching + deadline shedding** — the dispatcher coalesces queued
//!   requests into batches of at most [`ServingConfig::max_batch`],
//!   admitting a request into a batch only if its predicted completion
//!   meets its deadline (`arrival + latency_budget`). A request that
//!   cannot meet its deadline even at the front of a fresh batch is
//!   hopeless and is shed instead of wasting pipeline capacity.
//! * **Pipelining** — each strategy's plan is split into layer groups
//!   ([`lts_partition::partition_stages_at`] on the measured per-layer
//!   cycles; on an MCM package the chiplet stages of
//!   [`lts_partition::McmPlan`] are used directly). A batch drains with
//!   initiation interval `max(group cycles)`: request `j` completes at
//!   `dispatch + latency + j·interval`, plus any measured entry-burst
//!   contention from a keyed [`crate::simcache`] simulation
//!   ([`crate::simcache::run_cached_keyed`] — the key covers the
//!   arrival seed and batch composition).
//! * **Controller** ([`ControllerConfig`]) — watches queue depth and a
//!   windowed p95 of observed latencies and walks the strategy ladder
//!   (Traditional → Structure → SS → SS_Mask) with patience and a
//!   cooldown, so it cannot flap.
//! * **Faults** ([`StreamFault`]) — mid-stream core deaths. A fault
//!   that lands inside an in-flight batch rides the online recovery
//!   path ([`crate::recovery::run_with_recovery`]) and delays exactly
//!   the requests still in the pipeline; a fault on an idle server
//!   stalls dispatch for the heartbeat detection latency. Either way
//!   the serving loop continues on replanned, degraded profiles,
//!   shedding at admission to protect the SLO. If *no* strategy can run
//!   on the survivors, the run halts fail-operationally with typed
//!   outcomes — never a panic, never silent loss.
//!
//! Everything is deterministic in the config: no wall clock, no global
//! RNG, a single-threaded event loop, and NoC work memoized through the
//! cross-sweep cache.

use crate::chaos::splitmix;
use crate::degradation::{grouped_convnet_spec, hop_local_weights};
use crate::outcome::{Outcome, OutcomeHistogram};
use crate::recovery::{
    run_with_recovery, run_with_recovery_chiplets, ChipletFault, InferenceFault,
};
use crate::simcache::{self, SimUsage};
use crate::system::{SystemModel, SystemReport};
use crate::{CoreError, Result};
use lts_nn::descriptor::{convnet_spec, NetworkSpec};
use lts_noc::traffic::Message;
use lts_noc::{
    FaultModel, McmTopology, MonitorConfig, NocConfig, NocError, Simulator, Topo, Topology,
};
use lts_partition::{group_occupancy, partition_stages_at, replan, DegradedPlan, McmPlan, Plan};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;

/// Largest request count one run may generate (memory guard: the whole
/// stream is materialized up front for determinism).
const MAX_REQUESTS: usize = 100_000;

/// The open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless stream at a fixed mean rate (requests per megacycle).
    Poisson {
        /// Mean arrival rate in requests per megacycle.
        rate_rpmc: f64,
    },
    /// Two-state Markov-modulated Poisson process: the stream dwells in
    /// a calm state and a burst state with exponentially distributed
    /// dwell times, emitting at the current state's rate.
    Burst {
        /// Mean rate of the calm state (requests per megacycle).
        base_rpmc: f64,
        /// Mean rate of the burst state (requests per megacycle).
        burst_rpmc: f64,
        /// Mean dwell time in each state, in cycles.
        mean_dwell_cycles: u64,
    },
}

impl ArrivalProcess {
    /// The process's worst-case mean rate (the burst state for MMPP).
    pub fn peak_rpmc(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rpmc } => rate_rpmc,
            ArrivalProcess::Burst { base_rpmc, burst_rpmc, .. } => base_rpmc.max(burst_rpmc),
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = match *self {
            ArrivalProcess::Poisson { rate_rpmc } => rate_rpmc > 0.0 && rate_rpmc.is_finite(),
            ArrivalProcess::Burst { base_rpmc, burst_rpmc, mean_dwell_cycles } => {
                base_rpmc > 0.0
                    && burst_rpmc > 0.0
                    && base_rpmc.is_finite()
                    && burst_rpmc.is_finite()
                    && mean_dwell_cycles > 0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::BadConfig("arrival rates must be positive and finite".into()))
        }
    }
}

/// A seeded, bounded request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The stochastic process requests are drawn from.
    pub process: ArrivalProcess,
    /// Cycles of open-loop arrivals (no request arrives at or past the
    /// horizon; queued work still drains afterwards).
    pub horizon_cycles: u64,
    /// Stream seed: same seed, same request times, on any machine.
    pub seed: u64,
}

impl ArrivalConfig {
    /// Materializes the stream: non-decreasing arrival cycles within
    /// the horizon.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] for non-positive rates, a zero horizon,
    /// or a stream that would exceed the request-count guard.
    pub fn times(&self) -> Result<Vec<u64>> {
        self.process.validate()?;
        if self.horizon_cycles == 0 {
            return Err(CoreError::BadConfig("arrival horizon must be positive".into()));
        }
        let expected = self.process.peak_rpmc() * self.horizon_cycles as f64 / 1e6;
        if expected > MAX_REQUESTS as f64 {
            return Err(CoreError::BadConfig(format!(
                "stream would generate ~{expected:.0} requests (cap {MAX_REQUESTS})"
            )));
        }
        let mut state = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut times = Vec::new();
        match self.process {
            ArrivalProcess::Poisson { rate_rpmc } => {
                let mean = 1e6 / rate_rpmc;
                let mut t = 0u64;
                loop {
                    t = t.saturating_add(exp_cycles(&mut state, mean));
                    if t >= self.horizon_cycles || times.len() >= MAX_REQUESTS {
                        break;
                    }
                    times.push(t);
                }
            }
            ArrivalProcess::Burst { base_rpmc, burst_rpmc, mean_dwell_cycles } => {
                let mut t = 0u64;
                let mut bursting = false;
                let mut switch_at = exp_cycles(&mut state, mean_dwell_cycles as f64);
                loop {
                    let rate = if bursting { burst_rpmc } else { base_rpmc };
                    let next = t.saturating_add(exp_cycles(&mut state, 1e6 / rate));
                    if next >= switch_at {
                        // The dwell ends before the next arrival: change
                        // state and redraw from the new rate.
                        t = switch_at;
                        bursting = !bursting;
                        switch_at = switch_at
                            .saturating_add(exp_cycles(&mut state, mean_dwell_cycles as f64));
                        if t >= self.horizon_cycles {
                            break;
                        }
                        continue;
                    }
                    t = next;
                    if t >= self.horizon_cycles || times.len() >= MAX_REQUESTS {
                        break;
                    }
                    times.push(t);
                }
            }
        }
        Ok(times)
    }
}

/// One exponential inter-event draw with the given mean, in cycles
/// (at least 1, so time always advances).
fn exp_cycles(state: &mut u64, mean_cycles: f64) -> u64 {
    let bits = splitmix(state);
    // Uniform in (0, 1]: never ln(0).
    let u = ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let dt = -u.ln() * mean_cycles;
    if dt >= u64::MAX as f64 {
        u64::MAX
    } else {
        (dt.round() as u64).max(1)
    }
}

/// The strategy ladder the controller walks. Order is the declared
/// degradation order under load: the left end keeps full fidelity and
/// moves the most traffic, the right end trades accuracy for
/// communication locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServingStrategy {
    /// Dense ConvNet, traditional sharding (§IV-A).
    Traditional,
    /// Grouped ConvNet-G, structure-level parallelism (§IV-B).
    Structure,
    /// Dense ConvNet with distance-blind synthetic sparsity (SS).
    Ss,
    /// Dense ConvNet with hop-local SS_Mask-style sparsity (§IV-C).
    SsMask,
}

impl ServingStrategy {
    /// Every strategy, in ladder (degradation) order.
    pub const LADDER: [ServingStrategy; 4] = [
        ServingStrategy::Traditional,
        ServingStrategy::Structure,
        ServingStrategy::Ss,
        ServingStrategy::SsMask,
    ];

    /// The paper's display label.
    pub fn label(self) -> &'static str {
        match self {
            ServingStrategy::Traditional => "Traditional",
            ServingStrategy::Structure => "Structure",
            ServingStrategy::Ss => "SS",
            ServingStrategy::SsMask => "SS_Mask",
        }
    }

    fn index(self) -> usize {
        Self::LADDER.iter().position(|&s| s == self).unwrap_or_default()
    }
}

impl std::fmt::Display for ServingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A mid-stream fault: `dead_cores` die (compute and router together)
/// at `at_cycle` on the serving timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamFault {
    /// Serving-timeline cycle of the death.
    pub at_cycle: u64,
    /// Physical cores killed (distinct, in range, never everything).
    pub dead_cores: Vec<usize>,
}

/// The [`StreamFault`] that kills every core of `chiplet` at `at_cycle`
/// on `config`'s package — the serving-level form of a whole-chiplet
/// death. The dead set covers the chiplet exactly, so profile rebuilds
/// and in-flight recoveries take the hierarchical MCM path
/// (chiplet-liveness detection, survivor-stage restaging) rather than
/// the mesh fallback.
///
/// # Errors
///
/// [`CoreError::BadConfig`] when `config` is not an MCM package
/// (`chiplets <= 1`) or `chiplet` is out of range.
pub fn chiplet_stream_fault(
    config: &ServingConfig,
    chiplet: usize,
    at_cycle: u64,
) -> Result<StreamFault> {
    if config.chiplets <= 1 {
        return Err(CoreError::BadConfig(
            "chiplet faults need an MCM package (chiplets > 1)".into(),
        ));
    }
    if chiplet >= config.chiplets {
        return Err(CoreError::BadConfig(format!(
            "chiplet {chiplet} out of range for a {}-chiplet package",
            config.chiplets
        )));
    }
    let noc = NocConfig::paper_mcm(config.chiplets, config.cores).map_err(CoreError::Noc)?;
    let Topo::Mcm(topo) = noc.topo() else {
        return Err(CoreError::BadConfig("paper_mcm produced a single-chip mesh topology".into()));
    };
    Ok(StreamFault { at_cycle, dead_cores: topo.chiplet_nodes(chiplet) })
}

/// SLO-driven strategy-switching policy. The controller is evaluated at
/// each dispatch: `overloaded` (queue at or above `high_queue`, or
/// windowed p95 above 90% of the budget) for `patience` consecutive
/// dispatches moves one rung right (cheaper); `calm` (queue at or below
/// `low_queue` and p95 under half the budget) for `patience` dispatches
/// moves one rung back left. A `cooldown_cycles` dead time after every
/// switch makes flapping impossible by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Completed-request window the p95 is computed over.
    pub window: usize,
    /// Queue depth at which the controller considers the system
    /// overloaded.
    pub high_queue: usize,
    /// Queue depth at or below which the system counts as calm.
    pub low_queue: usize,
    /// Consecutive overloaded/calm dispatches before a switch.
    pub patience: usize,
    /// Minimum cycles between switches (`0` = twice the latency budget).
    pub cooldown_cycles: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self { window: 16, high_queue: 16, low_queue: 2, patience: 2, cooldown_cycles: 0 }
    }
}

/// One controller decision (including forced switches when a fault
/// leaves the current strategy unable to run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerEvent {
    /// Dispatch cycle of the switch.
    pub at_cycle: u64,
    /// Strategy before the switch.
    pub from: ServingStrategy,
    /// Strategy after the switch.
    pub to: ServingStrategy,
    /// Queue depth observed at the switch.
    pub queue_depth: usize,
    /// Windowed p95 latency observed at the switch (0 with no window).
    pub p95_latency: u64,
    /// Whether the switch was forced by a fault making the previous
    /// strategy unviable (as opposed to an SLO decision).
    pub forced: bool,
}

/// Full serving-run shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Cores per chip (per chiplet when `chiplets > 1`).
    pub cores: usize,
    /// Chiplets in the package; `> 1` selects the MCM system model and
    /// [`McmPlan`] stage pipelining.
    pub chiplets: usize,
    /// The request stream.
    pub arrivals: ArrivalConfig,
    /// Admission queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Most requests coalesced into one pipelined batch.
    pub max_batch: usize,
    /// Per-request latency budget in cycles (`0` = three times the
    /// initial strategy's single-request latency).
    pub latency_budget: u64,
    /// Layer groups for single-chip pipelining (MCM packages pipeline
    /// across their chiplet stages instead).
    pub pipeline_groups: usize,
    /// Initial strategy.
    pub strategy: ServingStrategy,
    /// Strategy-switching policy (`None` pins the initial strategy;
    /// fault-forced switches still happen).
    pub controller: Option<ControllerConfig>,
    /// Mid-stream core deaths, any order (applied in time order).
    pub faults: Vec<StreamFault>,
    /// Heartbeat monitor pricing detections (mesh- and MCM-aware).
    pub monitor: MonitorConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            chiplets: 1,
            arrivals: ArrivalConfig {
                process: ArrivalProcess::Poisson { rate_rpmc: 1.0 },
                horizon_cycles: 4_000_000,
                seed: 2019,
            },
            queue_capacity: 64,
            max_batch: 8,
            latency_budget: 0,
            pipeline_groups: 4,
            strategy: ServingStrategy::Traditional,
            controller: None,
            faults: Vec::new(),
            monitor: MonitorConfig::default(),
        }
    }
}

/// One dispatched batch on the serving timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Dispatch cycle.
    pub dispatched_at: u64,
    /// Completion cycle of the batch's last request.
    pub completed_at: u64,
    /// Requests in the batch.
    pub size: usize,
    /// Strategy the batch ran under.
    pub strategy: ServingStrategy,
    /// Entry-burst contention beyond the ideal pipeline schedule.
    pub contention_cycles: u64,
}

/// One mid-stream fault's recovery accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRecovery {
    /// Fault cycle on the serving timeline.
    pub at_cycle: u64,
    /// Cores killed by this fault.
    pub dead_cores: Vec<usize>,
    /// In-flight requests that rode the recovery (0 = the fault struck
    /// an idle server).
    pub in_flight: usize,
    /// Death-to-detection cycles.
    pub detection_cycles: u64,
    /// Cycles of delay charged to the affected requests (or the idle
    /// detection stall when nothing was in flight).
    pub overhead_cycles: u64,
}

/// Order statistics over a set of completion latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Completions summarized.
    pub completed: usize,
    /// Median latency in cycles.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst latency.
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
}

impl LatencySummary {
    fn from_latencies(mut lats: Vec<u64>) -> Self {
        if lats.is_empty() {
            return Self::default();
        }
        lats.sort_unstable();
        let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
        Self {
            completed: lats.len(),
            p50: percentile(&lats, 0.50),
            p95: percentile(&lats, 0.95),
            p99: percentile(&lats, 0.99),
            max: *lats.last().unwrap_or(&0),
            mean,
        }
    }
}

/// Nearest-rank percentile over a sorted slice (`0` when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Serving statistics for one phase (between consecutive applied
/// faults; a fault-free run has a single phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// `pre-fault` or `post@<cycle>`.
    pub label: String,
    /// Phase start cycle (inclusive).
    pub start: u64,
    /// Phase end cycle (exclusive; the last phase ends at the makespan).
    pub end: u64,
    /// Requests reaching a terminal non-shed state in the phase.
    pub completed: usize,
    /// Successful completions (served + recovered).
    pub served: usize,
    /// Requests shed in the phase.
    pub shed: usize,
    /// Deadline misses in the phase.
    pub missed: usize,
    /// Successful completions per megacycle — the QPS-dip signal.
    pub sustained_rpmc: f64,
    /// Latency summary over the phase's successful completions.
    pub latency: LatencySummary,
    /// Recovery overhead paid for the fault opening this phase.
    pub recovery_overhead_cycles: u64,
}

/// One strategy's service characteristics on the current system, plus
/// how much of the run it served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategySummary {
    /// The strategy.
    pub strategy: ServingStrategy,
    /// Single-request latency through all layer groups, in cycles.
    pub latency_cycles: u64,
    /// Pipeline initiation interval (slowest group), in cycles.
    pub interval_cycles: u64,
    /// Worst per-group/per-stage core occupancy, in `(0, 1]`.
    pub min_stage_occupancy: f64,
    /// Pipeline groups/stages of the profile. On an MCM package this is
    /// the chiplet stage count — after a whole-chiplet loss it shrinks
    /// to the survivor count (fewer, fatter stages), the typed signature
    /// of a degraded-MCM service profile.
    pub stages: usize,
    /// Batches dispatched under this strategy.
    pub batches: usize,
    /// Requests completed under this strategy.
    pub requests: usize,
}

/// Everything a serving run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests the stream offered.
    pub offered: usize,
    /// The arrival horizon.
    pub horizon_cycles: u64,
    /// Last completion cycle, floored at the horizon.
    pub makespan_cycles: u64,
    /// The per-request latency budget actually used.
    pub latency_budget: u64,
    /// Per-request outcome counts.
    pub outcomes: OutcomeHistogram,
    /// Latency summary over successful completions.
    pub latency: LatencySummary,
    /// Offered load in requests per megacycle.
    pub offered_rpmc: f64,
    /// Successful completions per megacycle of makespan.
    pub sustained_rpmc: f64,
    /// Shed requests over offered requests.
    pub shed_rate: f64,
    /// Deadline misses over offered requests.
    pub miss_rate: f64,
    /// Worst NoC saturation observed across the run: the larger of the
    /// entry-burst [`lts_noc::SimReport::blocked_share`] and the
    /// per-layer blocked share of the active profiles.
    pub noc_saturation: f64,
    /// Every dispatched batch, in order.
    pub batches: Vec<BatchRecord>,
    /// Per-strategy service characteristics and usage (strategies the
    /// final survivor set made unviable are omitted).
    pub strategies: Vec<StrategySummary>,
    /// Controller decisions, in order.
    pub controller_events: Vec<ControllerEvent>,
    /// Per-fault recovery accounting, in order.
    pub recoveries: Vec<ServeRecovery>,
    /// Per-phase statistics (fault boundaries split phases).
    pub phases: Vec<PhaseStats>,
    /// Set when the run halted fail-operationally (no strategy could
    /// run on the survivors).
    pub halted_at: Option<u64>,
    /// Simulated-vs-cached NoC work behind the run.
    pub sim: SimUsage,
}

impl ServingReport {
    /// Successful completions (served + recovered).
    pub fn served(&self) -> u64 {
        self.outcomes.successes()
    }
}

/// One strategy's workload: spec + weights, kept for replans and
/// recovery runs.
struct ServeWorkload {
    spec: NetworkSpec,
    weights: HashMap<String, Vec<f32>>,
}

/// A runnable service profile: the measured pipeline shape of one
/// strategy on the current (possibly degraded) system.
#[derive(Clone)]
struct ServiceProfile {
    /// Sum of group cycles: single-request latency.
    latency: u64,
    /// Slowest group: pipeline initiation interval.
    interval: u64,
    /// Layer ranges of the pipeline groups.
    group_ranges: Vec<Range<usize>>,
    /// Measured cycles of each group (same order as `group_ranges`).
    group_cycles: Vec<u64>,
    /// Physical entry-burst messages (first communicating transition).
    entry: Vec<Message>,
    /// Worst per-group core occupancy.
    min_occupancy: f64,
    /// Kill set in effect (for entry-burst simulations).
    fault: FaultModel,
    /// Worst per-layer blocked share of the profile's evaluation.
    saturation: f64,
}

/// Builds the four-strategy workload set (ladder order) for
/// `cores`-core chips.
fn serve_workloads(cores: usize) -> Result<Vec<ServeWorkload>> {
    let dense = convnet_spec();
    let groups = (1..=cores).rev().find(|g| 32 % g == 0 && 64 % g == 0).unwrap_or(1);
    let mask_weights = hop_local_weights(&dense, cores)?;
    Ok(vec![
        ServeWorkload { spec: dense.clone(), weights: HashMap::new() },
        ServeWorkload { spec: grouped_convnet_spec(groups), weights: HashMap::new() },
        ServeWorkload { spec: dense.clone(), weights: uniform_sparse_weights(&dense, cores)? },
        ServeWorkload { spec: dense, weights: mask_weights },
    ])
}

/// Distance-blind synthetic SS weights: half the off-diagonal
/// producer→consumer weight groups are zeroed by parity, ignoring mesh
/// placement — the paper's plain size-level sparsity, which cuts
/// traffic volume but not hop distance.
fn uniform_sparse_weights(spec: &NetworkSpec, cores: usize) -> Result<HashMap<String, Vec<f32>>> {
    let plan = Plan::dense(spec, cores, 2)?;
    let mut weights = HashMap::new();
    for lp in &plan.layers {
        let Some(layout) = &lp.layout else { continue };
        if lp.traffic.is_empty() {
            continue;
        }
        let mut w = vec![1.0f32; layout.weight_len()];
        for p in 0..cores {
            for c in 0..cores {
                if p != c && (p + c) % 2 == 1 {
                    layout.visit_group(p, c, |idx| w[idx] = 0.0);
                }
            }
        }
        weights.insert(lp.spec.name.clone(), w);
    }
    Ok(weights)
}

/// The modeled platform: one system model shared by every profile.
struct Platform {
    model: SystemModel,
    chiplets: usize,
    pipeline_groups: usize,
}

impl Platform {
    fn build(config: &ServingConfig) -> Result<Platform> {
        let model = if config.chiplets > 1 {
            SystemModel::paper_mcm(config.chiplets, config.cores)?
        } else {
            SystemModel::paper(config.cores)?
        };
        Ok(Platform { model, chiplets: config.chiplets, pipeline_groups: config.pipeline_groups })
    }

    fn total_cores(&self) -> usize {
        self.model.cores()
    }
}

/// Folds a dead set into a kill-everything fault model.
fn kill_set(dead: &[usize]) -> FaultModel {
    dead.iter().fold(FaultModel::none(), |f, &d| f.kill_router(d))
}

/// Builds one strategy's service profile on the current survivors.
/// Returns `Ok(None)` when the strategy cannot run on the degraded
/// system (typed unreachable/cycle-limit evaluation failures).
fn build_profile(
    platform: &Platform,
    w: &ServeWorkload,
    dead: &[usize],
    usage: &mut SimUsage,
) -> Result<Option<ServiceProfile>> {
    type Parts = (SystemReport, Vec<Range<usize>>, Vec<f64>, Vec<Message>);
    let mut fault_model = kill_set(dead);
    let evaluated: Result<Parts> = if dead.is_empty() {
        if platform.chiplets > 1 {
            let Topo::Mcm(topo) = platform.model.noc_config().topo() else {
                return Err(CoreError::BadConfig("MCM platform without MCM topology".into()));
            };
            let mcm = McmPlan::build(&w.spec, &topo, &w.weights, 2)?;
            let ranges: Vec<Range<usize>> = mcm.stages.iter().map(|s| s.layers()).collect();
            let occupancy = mcm.stage_occupancy();
            platform
                .model
                .evaluate(&mcm.plan)
                .map(|report| (report, ranges, occupancy, entry_messages(&mcm.plan, None)))
        } else {
            let plan = Plan::build(&w.spec, platform.total_cores(), &w.weights, 2)?;
            platform.model.evaluate(&plan).map(|report| {
                let ranges = mesh_group_ranges(&w.spec, &report, platform.pipeline_groups);
                let occupancy = group_occupancy(&plan, &ranges);
                (report, ranges, occupancy, entry_messages(&plan, None))
            })
        }
    } else if let Some((topo, chips)) = mcm_dead_chiplets(platform, dead) {
        // Whole-chiplet losses keep the stage symmetry the MCM planner
        // assumes: restage the pipeline over the survivor chiplets
        // (fewer, fatter stages, seam distances re-priced) instead of
        // falling back to mesh-style grouping. The kill set is the
        // chiplet expansion — member routers plus seam endpoints.
        let mcm = McmPlan::replan_without_chiplets(&w.spec, &topo, &chips, &w.weights, 2)?;
        fault_model = crate::recovery::kill_chiplet_set(&topo, &chips);
        let ranges: Vec<Range<usize>> = mcm.stages.iter().map(|s| s.layers()).collect();
        let occupancy = mcm.stage_occupancy();
        platform
            .model
            .clone()
            .with_fault_model(fault_model.clone())
            .evaluate(&mcm.plan)
            .map(|report| (report, ranges, occupancy, entry_messages(&mcm.plan, None)))
    } else {
        let degraded = replan(&w.spec, platform.total_cores(), dead, &w.weights, 2)?;
        let model = platform.model.clone().with_fault_model(kill_set(dead));
        // MCM packages with a *partially* dead chiplet fall back to
        // mesh-style layer grouping over the survivor plan: the lone
        // dead core breaks the stage symmetry the MCM planner assumes.
        model.evaluate_degraded(&degraded).map(|report| {
            let ranges = mesh_group_ranges(&w.spec, &report, platform.pipeline_groups);
            let occupancy = group_occupancy(&degraded.plan, &ranges);
            (report, ranges, occupancy, entry_messages(&degraded.plan, Some(&degraded)))
        })
    };
    let (report, ranges, occupancy, entry) = match evaluated {
        Ok(parts) => parts,
        Err(CoreError::Noc(NocError::Unreachable { .. }))
        | Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => return Ok(None),
        Err(e) => return Err(e),
    };
    usage.merge(&report.sim);
    let group_cycles: Vec<u64> = ranges
        .iter()
        .map(|r| {
            r.clone()
                .filter_map(|li| report.layers.get(li))
                .map(|l| l.compute_cycles + l.comm_cycles)
                .sum()
        })
        .collect();
    let latency: u64 = group_cycles.iter().sum();
    let interval = group_cycles.iter().copied().max().unwrap_or(latency).max(1);
    let saturation = report
        .layers
        .iter()
        .map(|l| {
            if l.comm_cycles == 0 {
                0.0
            } else {
                l.blocked_flit_cycles as f64 / l.comm_cycles as f64
            }
        })
        .fold(0.0f64, f64::max);
    Ok(Some(ServiceProfile {
        latency: latency.max(1),
        interval,
        group_ranges: ranges,
        group_cycles,
        entry,
        min_occupancy: occupancy.iter().copied().fold(1.0, f64::min),
        fault: fault_model,
        saturation,
    }))
}

/// On an MCM platform, the dead chiplet ids when `dead` covers whole
/// chiplets exactly (every member core of every touched chiplet is in
/// `dead`); `None` on a flat mesh or when any touched chiplet is only
/// partially dead.
fn mcm_dead_chiplets(platform: &Platform, dead: &[usize]) -> Option<(McmTopology, Vec<usize>)> {
    if platform.chiplets <= 1 || dead.is_empty() {
        return None;
    }
    let Topo::Mcm(topo) = platform.model.noc_config().topo() else {
        return None;
    };
    let mut chips: Vec<usize> = dead.iter().map(|&n| topo.chiplet_of(n)).collect();
    chips.sort_unstable();
    chips.dedup();
    if chips.len() * topo.nodes_per_chiplet() != dead.len() {
        return None;
    }
    chips
        .iter()
        .all(|&c| topo.chiplet_nodes(c).iter().all(|n| dead.contains(n)))
        .then_some((topo, chips))
}

/// Layer-group ranges for a single-chip pipeline: the measured
/// per-layer cycles split with cuts only before weighted layers (the
/// same rule [`McmPlan`] uses for chiplet stages).
fn mesh_group_ranges(
    spec: &NetworkSpec,
    report: &SystemReport,
    groups: usize,
) -> Vec<Range<usize>> {
    let costs: Vec<u64> = report.layers.iter().map(|l| l.compute_cycles + l.comm_cycles).collect();
    let allowed: Vec<bool> = spec.layers.iter().map(|l| l.has_weights()).collect();
    partition_stages_at(&costs, groups, &allowed)
}

/// The first communicating layer transition's physical messages — the
/// burst a new request injects when it enters the pipeline.
fn entry_messages(plan: &Plan, degraded: Option<&DegradedPlan>) -> Vec<Message> {
    for lp in &plan.layers {
        if lp.traffic.is_empty() {
            continue;
        }
        return match degraded {
            Some(d) => d.physical_messages(lp).messages,
            None => lp.traffic.messages.clone(),
        };
    }
    Vec::new()
}

/// Per-request bookkeeping.
#[derive(Clone, Copy)]
struct RequestRecord {
    outcome: Outcome,
    /// Completion cycle (or shed cycle for shed requests).
    at: u64,
    /// Completion latency (0 for shed requests).
    latency: u64,
}

/// The saturated-pipeline service capacity of `config`'s initial
/// strategy in requests per megacycle: `max_batch` requests complete
/// every `latency + (max_batch − 1) · interval` cycles. Benches use
/// this to position arrival rates relative to saturation.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for invalid configs or a strategy that
/// cannot run on the platform.
pub fn service_capacity_rpmc(config: &ServingConfig) -> Result<f64> {
    validate(config)?;
    let platform = Platform::build(config)?;
    let workloads = serve_workloads(config.cores)?;
    let w = &workloads[config.strategy.index()];
    let mut usage = SimUsage::default();
    let profile = build_profile(&platform, w, &[], &mut usage)?
        .ok_or_else(|| CoreError::BadConfig("strategy cannot run on the healthy system".into()))?;
    let b = config.max_batch as u64;
    let span = profile.latency + (b - 1) * profile.interval;
    Ok(b as f64 * 1e6 / span as f64)
}

fn validate(config: &ServingConfig) -> Result<()> {
    if config.cores == 0 || config.chiplets == 0 {
        return Err(CoreError::BadConfig("cores and chiplets must be positive".into()));
    }
    if config.queue_capacity == 0 || config.max_batch == 0 || config.pipeline_groups == 0 {
        return Err(CoreError::BadConfig(
            "queue_capacity, max_batch and pipeline_groups must be positive".into(),
        ));
    }
    config.arrivals.process.validate()?;
    if config.arrivals.horizon_cycles == 0 {
        return Err(CoreError::BadConfig("arrival horizon must be positive".into()));
    }
    let total = config.cores * config.chiplets;
    let mut all_dead: Vec<usize> = Vec::new();
    for f in &config.faults {
        if f.dead_cores.is_empty() {
            return Err(CoreError::BadConfig("a stream fault must kill at least one core".into()));
        }
        for &d in &f.dead_cores {
            if d >= total {
                return Err(CoreError::BadConfig(format!(
                    "dead core {d} out of range for {total} cores"
                )));
            }
            if all_dead.contains(&d) {
                return Err(CoreError::BadConfig(format!("core {d} killed twice")));
            }
            all_dead.push(d);
        }
    }
    if all_dead.len() + 2 > total {
        return Err(CoreError::BadConfig("faults must leave at least two survivors".into()));
    }
    Ok(())
}

/// Runs the serving simulation described by `config`.
///
/// Deterministic in the config: identical configs produce bit-identical
/// reports across runs, `LTS_THREADS` settings, and simcache
/// temperature.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for invalid configs; plan or simulation
/// errors other than the typed fail-operational outcomes (which are
/// folded into the report instead).
pub fn run_serving(config: &ServingConfig) -> Result<ServingReport> {
    let _probe = lts_obs::span("core.serve");
    validate(config)?;
    let platform = Platform::build(config)?;
    let workloads = serve_workloads(config.cores)?;
    let mut state = ServeState::new(config, &platform, &workloads)?;
    state.run(config, &platform, &workloads)?;
    Ok(state.into_report(config))
}

/// Mutable state of one serving run.
struct ServeState {
    profiles: Vec<Option<ServiceProfile>>,
    idx: usize,
    budget: u64,
    arrival_times: Vec<u64>,
    records: Vec<Option<RequestRecord>>,
    batch_counts: Vec<(usize, usize)>,
    batches: Vec<BatchRecord>,
    recoveries: Vec<ServeRecovery>,
    controller_events: Vec<ControllerEvent>,
    noc_saturation: f64,
    faults: Vec<StreamFault>,
    fault_idx: usize,
    dead_all: Vec<usize>,
    phase_bounds: Vec<u64>,
    queue: VecDeque<(usize, u64)>,
    next_arrival: usize,
    t_free: u64,
    makespan: u64,
    halted_at: Option<u64>,
    lat_window: VecDeque<u64>,
    over_streak: usize,
    calm_streak: usize,
    last_switch: u64,
    cooldown: u64,
    sim: SimUsage,
}

impl ServeState {
    fn new(
        config: &ServingConfig,
        platform: &Platform,
        workloads: &[ServeWorkload],
    ) -> Result<ServeState> {
        let mut sim = SimUsage::default();
        let mut profiles = Vec::with_capacity(workloads.len());
        for w in workloads {
            profiles.push(build_profile(platform, w, &[], &mut sim)?);
        }
        let idx = config.strategy.index();
        let Some(initial) = profiles[idx].as_ref() else {
            return Err(CoreError::BadConfig(
                "initial strategy cannot run on the healthy system".into(),
            ));
        };
        let budget =
            if config.latency_budget == 0 { initial.latency * 3 } else { config.latency_budget };
        let noc_saturation = initial.saturation;
        let arrival_times = config.arrivals.times()?;
        let offered = arrival_times.len();
        let mut faults = config.faults.clone();
        faults.sort_by_key(|f| f.at_cycle);
        let cooldown =
            config
                .controller
                .map(|c| {
                    if c.cooldown_cycles == 0 {
                        budget.saturating_mul(2)
                    } else {
                        c.cooldown_cycles
                    }
                })
                .unwrap_or(0);
        Ok(ServeState {
            profiles,
            idx,
            budget,
            arrival_times,
            records: vec![None; offered],
            batch_counts: vec![(0, 0); ServingStrategy::LADDER.len()],
            batches: Vec::new(),
            recoveries: Vec::new(),
            controller_events: Vec::new(),
            noc_saturation,
            faults,
            fault_idx: 0,
            dead_all: Vec::new(),
            phase_bounds: Vec::new(),
            queue: VecDeque::new(),
            next_arrival: 0,
            t_free: 0,
            makespan: 0,
            halted_at: None,
            lat_window: VecDeque::new(),
            over_streak: 0,
            calm_streak: 0,
            last_switch: 0,
            cooldown,
            sim,
        })
    }

    /// Admits every arrival at or before `now`; a full queue sheds.
    fn admit_until(&mut self, now: u64, capacity: usize) {
        while self.next_arrival < self.arrival_times.len()
            && self.arrival_times[self.next_arrival] <= now
        {
            let at = self.arrival_times[self.next_arrival];
            if self.queue.len() >= capacity {
                self.records[self.next_arrival] =
                    Some(RequestRecord { outcome: Outcome::Shed, at, latency: 0 });
            } else {
                self.queue.push_back((self.next_arrival, at));
            }
            self.next_arrival += 1;
        }
    }

    /// Rebuilds every rung's profile on the current survivor set; if the
    /// active rung died, force-switches to the nearest viable rung
    /// (preferring cheaper strategies) or halts the run.
    fn rebuild_profiles(
        &mut self,
        platform: &Platform,
        workloads: &[ServeWorkload],
        at: u64,
    ) -> Result<()> {
        for (i, w) in workloads.iter().enumerate() {
            self.profiles[i] = build_profile(platform, w, &self.dead_all, &mut self.sim)?;
        }
        if self.profiles[self.idx].is_none() {
            let fallback = (self.idx + 1..self.profiles.len())
                .chain((0..self.idx).rev())
                .find(|&i| self.profiles[i].is_some());
            match fallback {
                Some(to) => {
                    self.controller_events.push(ControllerEvent {
                        at_cycle: at,
                        from: ServingStrategy::LADDER[self.idx],
                        to: ServingStrategy::LADDER[to],
                        queue_depth: self.queue.len(),
                        p95_latency: windowed_p95(&self.lat_window),
                        forced: true,
                    });
                    self.idx = to;
                    self.last_switch = at;
                }
                None => self.halted_at = Some(at),
            }
        }
        if let Some(p) = self.profiles[self.idx].as_ref() {
            self.noc_saturation = self.noc_saturation.max(p.saturation);
        }
        Ok(())
    }

    /// Applies a fault that struck an idle server and returns the cycle
    /// dispatch may resume (the heartbeat detection stall).
    fn apply_idle_fault(
        &mut self,
        platform: &Platform,
        monitor: &MonitorConfig,
        f: &StreamFault,
    ) -> u64 {
        let detection = f
            .dead_cores
            .iter()
            .map(|&c| monitor.detection_latency(platform.model.noc_config(), c, f.at_cycle))
            .max()
            .unwrap_or(0);
        self.dead_all.extend_from_slice(&f.dead_cores);
        self.dead_all.sort_unstable();
        self.recoveries.push(ServeRecovery {
            at_cycle: f.at_cycle,
            dead_cores: f.dead_cores.clone(),
            in_flight: 0,
            detection_cycles: detection,
            overhead_cycles: detection,
        });
        self.phase_bounds.push(f.at_cycle);
        f.at_cycle.saturating_add(detection)
    }

    /// Evaluates the SLO controller at a dispatch point.
    fn run_controller(&mut self, cc: &ControllerConfig, t0: u64) {
        let p95 = windowed_p95(&self.lat_window);
        let depth = self.queue.len();
        let overloaded = depth >= cc.high_queue || (p95 > 0 && p95 * 10 > self.budget * 9);
        let calm = depth <= cc.low_queue && p95 * 2 <= self.budget;
        if overloaded {
            self.over_streak += 1;
            self.calm_streak = 0;
        } else if calm {
            self.calm_streak += 1;
            self.over_streak = 0;
        } else {
            self.over_streak = 0;
            self.calm_streak = 0;
        }
        let cooled = t0.saturating_sub(self.last_switch) >= self.cooldown;
        let target = if self.over_streak >= cc.patience && cooled {
            (self.idx + 1..self.profiles.len()).find(|&i| self.profiles[i].is_some())
        } else if self.calm_streak >= cc.patience && cooled && self.last_switch > 0 {
            (0..self.idx).rev().find(|&i| self.profiles[i].is_some())
        } else {
            None
        };
        if let Some(to) = target {
            self.controller_events.push(ControllerEvent {
                at_cycle: t0,
                from: ServingStrategy::LADDER[self.idx],
                to: ServingStrategy::LADDER[to],
                queue_depth: depth,
                p95_latency: p95,
                forced: false,
            });
            self.idx = to;
            self.last_switch = t0;
            self.over_streak = 0;
            self.calm_streak = 0;
        }
    }

    /// Forms a batch under the deadline-shedding predicate.
    fn form_batch(
        &mut self,
        profile: &ServiceProfile,
        config: &ServingConfig,
        t0: u64,
    ) -> Vec<(usize, u64)> {
        let mut batch: Vec<(usize, u64)> = Vec::new();
        while batch.len() < config.max_batch {
            let Some(&(id, arrival)) = self.queue.front() else { break };
            let j = batch.len() as u64;
            let predicted = t0 + profile.latency + j * profile.interval;
            if predicted > arrival + self.budget {
                if batch.is_empty() {
                    // Hopeless even at the front of a fresh batch.
                    self.queue.pop_front();
                    self.records[id] =
                        Some(RequestRecord { outcome: Outcome::Shed, at: t0, latency: 0 });
                    continue;
                }
                // Might still make it at the front of the next batch.
                break;
            }
            self.queue.pop_front();
            batch.push((id, arrival));
        }
        batch
    }

    /// The serving event loop.
    fn run(
        &mut self,
        config: &ServingConfig,
        platform: &Platform,
        workloads: &[ServeWorkload],
    ) -> Result<()> {
        let obs = lts_obs::enabled();
        let track = if obs { Some(lts_obs::cycle_track_named("core.serve")) } else { None };
        let window = config.controller.map(|c| c.window.max(1)).unwrap_or(16);

        'serve: loop {
            if self.halted_at.is_some() {
                break;
            }
            if self.queue.is_empty() {
                if self.next_arrival >= self.arrival_times.len() {
                    break;
                }
                // Idle: jump to the next arrival, applying idle faults
                // on the way.
                let next_at = self.arrival_times[self.next_arrival];
                while self.fault_idx < self.faults.len()
                    && self.faults[self.fault_idx].at_cycle <= next_at
                {
                    let f = self.faults[self.fault_idx].clone();
                    self.fault_idx += 1;
                    let stall = self.apply_idle_fault(platform, &config.monitor, &f);
                    self.t_free = self.t_free.max(stall);
                    self.rebuild_profiles(platform, workloads, f.at_cycle)?;
                    if self.halted_at.is_some() {
                        break 'serve;
                    }
                }
                self.admit_until(next_at, config.queue_capacity);
                continue;
            }
            let head_arrival = self.queue.front().map(|&(_, a)| a).unwrap_or(0);
            let mut t0 = self.t_free.max(head_arrival);
            // Faults landing before dispatch hit an idle pipeline.
            while self.fault_idx < self.faults.len() && self.faults[self.fault_idx].at_cycle <= t0 {
                let f = self.faults[self.fault_idx].clone();
                self.fault_idx += 1;
                let stall = self.apply_idle_fault(platform, &config.monitor, &f);
                t0 = t0.max(stall);
                self.rebuild_profiles(platform, workloads, f.at_cycle)?;
                if self.halted_at.is_some() {
                    break 'serve;
                }
            }
            // Late arrivals that landed while the server was busy.
            self.admit_until(t0, config.queue_capacity);

            if let Some(cc) = config.controller {
                self.run_controller(&cc, t0);
            }
            let dispatch_idx = self.idx;
            let Some(profile) = self.profiles[dispatch_idx].clone() else {
                self.halted_at = Some(t0);
                break;
            };

            let batch = self.form_batch(&profile, config, t0);
            if batch.is_empty() {
                continue;
            }

            // Entry-burst contention: the batch's staggered entry bursts
            // on the real NoC, keyed on arrival seed + batch composition.
            let (contention, burst_share) =
                batch_contention(platform, &profile, batch.len(), &config.arrivals, &mut self.sim)?;
            self.noc_saturation = self.noc_saturation.max(burst_share).max(profile.saturation);

            // In-flight faults: apply every fault landing before the
            // batch fully drains, delaying exactly the requests still in
            // the pipeline.
            let mut deltas: Vec<(u64, u64)> = Vec::new();
            let mut end = completion_of(t0, &profile, batch.len() as u64 - 1, contention, &deltas);
            while self.fault_idx < self.faults.len() && self.faults[self.fault_idx].at_cycle < end {
                let f = self.faults[self.fault_idx].clone();
                self.fault_idx += 1;
                let w = &workloads[dispatch_idx];
                let boundary =
                    fault_boundary_layer(&profile, &w.spec, f.at_cycle.saturating_sub(t0));
                let in_flight = batch
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| {
                        completion_of(t0, &profile, j as u64, contention, &deltas) > f.at_cycle
                    })
                    .count();
                // Whole-chiplet deaths on a package take the hierarchical
                // path: chiplet-liveness detection + survivor restaging.
                let recovery = match mcm_dead_chiplets(platform, &f.dead_cores) {
                    Some((_, chips)) => run_with_recovery_chiplets(
                        &platform.model,
                        &w.spec,
                        &w.weights,
                        &[ChipletFault { layer: boundary, dead_chiplets: chips }],
                        &config.monitor,
                    ),
                    None => run_with_recovery(
                        &platform.model,
                        &w.spec,
                        &w.weights,
                        &[InferenceFault { layer: boundary, dead_cores: f.dead_cores.clone() }],
                        &config.monitor,
                    ),
                };
                match recovery {
                    Ok(rec) => {
                        let delta =
                            rec.report.total_cycles.saturating_sub(rec.fault_free.total_cycles);
                        self.sim.merge(&rec.report.sim);
                        self.recoveries.push(ServeRecovery {
                            at_cycle: f.at_cycle,
                            dead_cores: f.dead_cores.clone(),
                            in_flight,
                            detection_cycles: rec.detection_cycles(),
                            overhead_cycles: delta,
                        });
                        self.phase_bounds.push(f.at_cycle);
                        deltas.push((f.at_cycle, delta));
                        end = completion_of(
                            t0,
                            &profile,
                            batch.len() as u64 - 1,
                            contention,
                            &deltas,
                        );
                    }
                    Err(CoreError::Noc(NocError::Unreachable { .. })) => {
                        self.fail_batch(&batch, Outcome::Unreachable, f.at_cycle);
                        self.phase_bounds.push(f.at_cycle);
                        self.halted_at = Some(f.at_cycle);
                        break 'serve;
                    }
                    Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => {
                        self.fail_batch(&batch, Outcome::CycleLimit, f.at_cycle);
                        self.phase_bounds.push(f.at_cycle);
                        self.halted_at = Some(f.at_cycle);
                        break 'serve;
                    }
                    Err(e) => return Err(e),
                }
                self.dead_all.extend_from_slice(&f.dead_cores);
                self.dead_all.sort_unstable();
                // The in-flight batch was planned on the pre-fault
                // profile and still completes (recovery succeeded); the
                // *next* batch sees the rebuilt, degraded profiles.
                self.rebuild_profiles(platform, workloads, f.at_cycle)?;
                if self.halted_at.is_some() {
                    break;
                }
            }

            // Commit the batch's outcomes.
            let rode_recovery = !deltas.is_empty();
            for (j, &(id, arrival)) in batch.iter().enumerate() {
                let completion = completion_of(t0, &profile, j as u64, contention, &deltas);
                let latency = completion - arrival;
                let outcome = if latency > self.budget {
                    Outcome::DeadlineMiss
                } else if rode_recovery
                    && completion_of(t0, &profile, j as u64, contention, &[]) != completion
                {
                    Outcome::Recovered
                } else {
                    Outcome::Served
                };
                self.records[id] = Some(RequestRecord { outcome, at: completion, latency });
                self.makespan = self.makespan.max(completion);
                self.lat_window.push_back(latency);
                while self.lat_window.len() > window {
                    self.lat_window.pop_front();
                }
                if let Some(track) = track {
                    let label = format!("req{id}");
                    lts_obs::cycle_record(track, "wait", &label, t0.saturating_sub(arrival));
                    lts_obs::cycle_record(track, "service", &label, completion - t0);
                }
            }
            self.batch_counts[dispatch_idx].0 += 1;
            self.batch_counts[dispatch_idx].1 += batch.len();
            self.batches.push(BatchRecord {
                dispatched_at: t0,
                completed_at: end,
                size: batch.len(),
                strategy: ServingStrategy::LADDER[dispatch_idx],
                contention_cycles: contention,
            });
            self.t_free = end;
        }

        // Whatever is left when the run halts is shed.
        if let Some(halt) = self.halted_at {
            let queued: Vec<usize> = self.queue.iter().map(|&(id, _)| id).collect();
            for id in queued {
                self.records[id] =
                    Some(RequestRecord { outcome: Outcome::Shed, at: halt, latency: 0 });
            }
            while self.next_arrival < self.arrival_times.len() {
                self.records[self.next_arrival] = Some(RequestRecord {
                    outcome: Outcome::Shed,
                    at: self.arrival_times[self.next_arrival].max(halt),
                    latency: 0,
                });
                self.next_arrival += 1;
            }
        }
        if obs {
            lts_obs::counter_add("serve.batches", self.batches.len() as u64);
        }
        Ok(())
    }

    /// Marks every batch member with a terminal typed outcome.
    fn fail_batch(&mut self, batch: &[(usize, u64)], outcome: Outcome, at: u64) {
        for &(id, _) in batch {
            self.records[id] = Some(RequestRecord { outcome, at, latency: 0 });
        }
    }

    fn into_report(self, config: &ServingConfig) -> ServingReport {
        let offered = self.arrival_times.len();
        let mut outcomes = OutcomeHistogram::default();
        let mut success_lats = Vec::new();
        for r in self.records.iter().flatten() {
            outcomes.record(r.outcome);
            if r.outcome.is_success() {
                success_lats.push(r.latency);
            }
        }
        debug_assert_eq!(outcomes.total() as usize, offered, "every request must be accounted for");
        let makespan = self.makespan.max(config.arrivals.horizon_cycles);
        let offered_rpmc = offered as f64 * 1e6 / config.arrivals.horizon_cycles as f64;
        let sustained_rpmc = outcomes.successes() as f64 * 1e6 / makespan as f64;
        let shed_rate = if offered == 0 { 0.0 } else { outcomes.shed as f64 / offered as f64 };
        let miss_rate =
            if offered == 0 { 0.0 } else { outcomes.deadline_miss as f64 / offered as f64 };
        let strategies = ServingStrategy::LADDER
            .iter()
            .enumerate()
            .filter_map(|(i, &strategy)| {
                self.profiles[i].as_ref().map(|p| StrategySummary {
                    strategy,
                    latency_cycles: p.latency,
                    interval_cycles: p.interval,
                    min_stage_occupancy: p.min_occupancy,
                    stages: p.group_ranges.len(),
                    batches: self.batch_counts[i].0,
                    requests: self.batch_counts[i].1,
                })
            })
            .collect();
        let phases = build_phases(&self.records, &self.recoveries, &self.phase_bounds, makespan);
        if lts_obs::enabled() {
            lts_obs::counter_add("serve.offered", offered as u64);
            lts_obs::counter_add("serve.served", outcomes.served);
            lts_obs::counter_add("serve.recovered", outcomes.recovered);
            lts_obs::counter_add("serve.shed", outcomes.shed);
            lts_obs::counter_add("serve.deadline_miss", outcomes.deadline_miss);
        }
        ServingReport {
            offered,
            horizon_cycles: config.arrivals.horizon_cycles,
            makespan_cycles: makespan,
            latency_budget: self.budget,
            outcomes,
            latency: LatencySummary::from_latencies(success_lats),
            offered_rpmc,
            sustained_rpmc,
            shed_rate,
            miss_rate,
            noc_saturation: self.noc_saturation,
            batches: self.batches,
            strategies,
            controller_events: self.controller_events,
            recoveries: self.recoveries,
            phases,
            halted_at: self.halted_at,
            sim: self.sim,
        }
    }
}

/// Completion cycle of batch position `j`, including every recovery
/// delay that landed before the request left the pipeline.
fn completion_of(
    t0: u64,
    profile: &ServiceProfile,
    j: u64,
    contention: u64,
    deltas: &[(u64, u64)],
) -> u64 {
    let mut c = t0 + profile.latency + j * profile.interval + contention;
    for &(at, delta) in deltas {
        if c > at {
            c += delta;
        }
    }
    c
}

/// Windowed p95 of observed completion latencies (0 with no samples).
fn windowed_p95(window: &VecDeque<u64>) -> u64 {
    if window.is_empty() {
        return 0;
    }
    let mut lats: Vec<u64> = window.iter().copied().collect();
    lats.sort_unstable();
    percentile(&lats, 0.95)
}

/// Maps a fault's offset into the head request's execution onto the
/// recovery path's layer-boundary semantics: the first layer of the
/// group being executed when the fault struck, clamped strictly
/// mid-network so the recovery is always mid-flight.
fn fault_boundary_layer(profile: &ServiceProfile, spec: &NetworkSpec, rel: u64) -> usize {
    let mut acc = 0u64;
    let mut group = profile.group_ranges.len().saturating_sub(1);
    for (g, cycles) in profile.group_cycles.iter().enumerate() {
        acc += cycles;
        if rel < acc {
            group = g;
            break;
        }
    }
    let start = profile.group_ranges.get(group).map(|r| r.start).unwrap_or(1);
    start.clamp(1, spec.layers.len().saturating_sub(1).max(1))
}

/// Simulates the batch's staggered entry bursts and returns the
/// contention beyond the ideal pipeline schedule plus the burst's
/// blocked share.
fn batch_contention(
    platform: &Platform,
    profile: &ServiceProfile,
    batch: usize,
    arrivals: &ArrivalConfig,
    usage: &mut SimUsage,
) -> Result<(u64, f64)> {
    if batch <= 1 || profile.entry.is_empty() {
        return Ok((0, 0.0));
    }
    let config = *platform.model.noc_config();
    let mut sim = Simulator::with_faults(config, profile.fault.clone())?;
    // Baseline: one request's entry burst — a pure triple, shared with
    // (and usually warm from) the system evaluation's own simulation of
    // this transition.
    let base = simcache::run_cached(&mut sim, &config, &profile.fault, &profile.entry, usage)?;
    let mut messages = Vec::with_capacity(profile.entry.len() * batch);
    for j in 0..batch as u64 {
        for m in &profile.entry {
            messages.push(Message::new(
                m.src,
                m.dst,
                m.bytes,
                m.inject_cycle + j * profile.interval,
            ));
        }
    }
    // The staggered burst is not a pure function of the triple (its
    // meaning depends on the serving stream): key on seed, process, and
    // batch composition so sweeps at different rates or seeds can never
    // alias.
    let context = format!(
        "serve:seed={}:process={:?}:batch={}:interval={}",
        arrivals.seed, arrivals.process, batch, profile.interval
    );
    let report =
        simcache::run_cached_keyed(&mut sim, &config, &profile.fault, &messages, &context, usage)?;
    let ideal = base.makespan + (batch as u64 - 1) * profile.interval;
    Ok((report.makespan.saturating_sub(ideal), report.blocked_share()))
}

/// Splits the run into phases at the applied fault cycles and
/// aggregates per-phase outcome and latency statistics.
fn build_phases(
    records: &[Option<RequestRecord>],
    recoveries: &[ServeRecovery],
    bounds: &[u64],
    makespan: u64,
) -> Vec<PhaseStats> {
    let mut starts = vec![0u64];
    for &b in bounds {
        if starts.last() != Some(&b) {
            starts.push(b);
        }
    }
    let mut phases = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(makespan.max(start + 1));
        let last = i + 1 == starts.len();
        let mut completed = 0usize;
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut missed = 0usize;
        let mut lats = Vec::new();
        for r in records.iter().flatten() {
            if r.at < start || (r.at >= end && !last) {
                continue;
            }
            match r.outcome {
                Outcome::Served | Outcome::Recovered => {
                    completed += 1;
                    served += 1;
                    lats.push(r.latency);
                }
                Outcome::DeadlineMiss => {
                    completed += 1;
                    missed += 1;
                }
                Outcome::Shed => shed += 1,
                Outcome::Unreachable | Outcome::CycleLimit => completed += 1,
            }
        }
        let span = end.saturating_sub(start).max(1);
        let recovery_overhead_cycles = recoveries
            .iter()
            .filter(|r| i > 0 && r.at_cycle == start)
            .map(|r| r.overhead_cycles)
            .sum();
        phases.push(PhaseStats {
            label: if i == 0 { "pre-fault".into() } else { format!("post@{start}") },
            start,
            end,
            completed,
            served,
            shed,
            missed,
            sustained_rpmc: served as f64 * 1e6 / span as f64,
            latency: LatencySummary::from_latencies(lats),
            recovery_overhead_cycles,
        });
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(rate_rpmc: f64, horizon_cycles: u64, seed: u64) -> ArrivalConfig {
        ArrivalConfig { process: ArrivalProcess::Poisson { rate_rpmc }, horizon_cycles, seed }
    }

    /// A small, fast base config used across the tests.
    fn base_config() -> ServingConfig {
        ServingConfig {
            arrivals: poisson(0.5, 4_000_000, 7),
            max_batch: 4,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn arrival_streams_are_deterministic_and_rate_scaling() {
        let a = poisson(2.0, 2_000_000, 11).times().unwrap();
        let b = poisson(2.0, 2_000_000, 11).times().unwrap();
        assert_eq!(a, b, "same seed must reproduce the stream bit-exactly");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be ordered");
        assert!(a.iter().all(|&t| t < 2_000_000), "arrivals must respect the horizon");
        let other_seed = poisson(2.0, 2_000_000, 12).times().unwrap();
        assert_ne!(a, other_seed, "different seeds must differ");
        let slow = poisson(0.5, 2_000_000, 11).times().unwrap();
        assert!(
            a.len() > 2 * slow.len(),
            "4x the rate must yield clearly more arrivals ({} vs {})",
            a.len(),
            slow.len()
        );
    }

    #[test]
    fn burst_streams_emit_more_than_their_base_rate() {
        let cfg = ArrivalConfig {
            process: ArrivalProcess::Burst {
                base_rpmc: 0.5,
                burst_rpmc: 8.0,
                mean_dwell_cycles: 400_000,
            },
            horizon_cycles: 4_000_000,
            seed: 3,
        };
        let times = cfg.times().unwrap();
        let base_only = poisson(0.5, 4_000_000, 3).times().unwrap();
        assert!(times.len() > base_only.len(), "bursts must add arrivals over the base rate");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(poisson(0.0, 1_000, 1).times().is_err(), "zero rate");
        assert!(poisson(1.0, 0, 1).times().is_err(), "zero horizon");
        let mut c = base_config();
        c.max_batch = 0;
        assert!(run_serving(&c).is_err(), "zero max_batch");
        let mut c = base_config();
        c.faults = vec![StreamFault { at_cycle: 10, dead_cores: vec![99] }];
        assert!(run_serving(&c).is_err(), "out-of-range dead core");
        let mut c = base_config();
        c.faults = vec![
            StreamFault { at_cycle: 10, dead_cores: vec![5] },
            StreamFault { at_cycle: 20, dead_cores: vec![5] },
        ];
        assert!(run_serving(&c).is_err(), "a core cannot die twice");
    }

    #[test]
    fn sub_saturation_stream_serves_everything_within_budget() {
        let mut config = base_config();
        let capacity = service_capacity_rpmc(&config).unwrap();
        config.arrivals = poisson(capacity * 0.4, config.arrivals.horizon_cycles, 7);
        let report = run_serving(&config).unwrap();
        assert!(report.offered > 0, "the stream must offer work");
        assert_eq!(report.outcomes.shed, 0, "sub-saturation must not shed: {:?}", report.outcomes);
        assert_eq!(report.outcomes.deadline_miss, 0, "sub-saturation must not miss");
        assert_eq!(report.served() as usize, report.offered);
        assert!(report.latency.p99 <= report.latency_budget);
        assert_eq!(report.phases.len(), 1, "fault-free run has one phase");
        assert!(report.halted_at.is_none());
    }

    #[test]
    fn overload_sheds_but_served_requests_stay_within_budget() {
        let mut config = base_config();
        let capacity = service_capacity_rpmc(&config).unwrap();
        config.arrivals = poisson(capacity * 2.0, config.arrivals.horizon_cycles, 7);
        let report = run_serving(&config).unwrap();
        assert!(report.outcomes.shed > 0, "2x overload must shed: {:?}", report.outcomes);
        assert!(report.served() > 0, "overload must still serve");
        assert_eq!(report.outcomes.deadline_miss, 0, "admission control must prevent misses");
        assert!(
            report.latency.p99 <= report.latency_budget,
            "p99 {} must stay within budget {}",
            report.latency.p99,
            report.latency_budget
        );
    }

    #[test]
    fn serving_runs_are_bit_identical() {
        let mut config = base_config();
        config.faults = vec![StreamFault { at_cycle: 1_500_000, dead_cores: vec![5] }];
        let a = run_serving(&config).unwrap();
        simcache::reset();
        let b = run_serving(&config).unwrap();
        assert_eq!(a, b, "identical configs must produce bit-identical reports");
    }

    #[test]
    fn mid_stream_fault_degrades_gracefully() {
        let mut config = base_config();
        let capacity = service_capacity_rpmc(&config).unwrap();
        config.arrivals = poisson(capacity * 0.4, config.arrivals.horizon_cycles, 7);
        config.faults = vec![StreamFault { at_cycle: 1_200_000, dead_cores: vec![5] }];
        let report = run_serving(&config).unwrap();
        assert!(report.halted_at.is_none(), "one dead core must not halt serving");
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].dead_cores, vec![5]);
        assert!(report.recoveries[0].detection_cycles > 0);
        assert_eq!(report.phases.len(), 2, "one fault splits the run into two phases");
        assert!(report.served() > 0, "the degraded system must keep serving");
        assert_eq!(
            report.outcomes.total() as usize,
            report.offered,
            "every request must be accounted for"
        );
    }

    #[test]
    fn controller_switches_under_overload_without_flapping() {
        let mut config = base_config();
        let capacity = service_capacity_rpmc(&config).unwrap();
        config.arrivals = poisson(capacity * 3.0, config.arrivals.horizon_cycles, 7);
        config.controller =
            Some(ControllerConfig { high_queue: 4, patience: 1, ..ControllerConfig::default() });
        let report = run_serving(&config).unwrap();
        assert!(
            !report.controller_events.is_empty(),
            "3x overload with a 4-deep trigger must switch strategies"
        );
        for e in &report.controller_events {
            assert_ne!(e.from, e.to);
            assert!(!e.forced, "no faults: every switch is an SLO decision");
        }
        // Hysteresis: consecutive switches must be separated by the
        // cooldown (2x budget by default).
        for pair in report.controller_events.windows(2) {
            assert!(
                pair[1].at_cycle - pair[0].at_cycle >= report.latency_budget * 2,
                "switches at {} and {} violate the cooldown",
                pair[0].at_cycle,
                pair[1].at_cycle
            );
        }
    }

    #[test]
    fn mcm_package_serves_with_stage_pipelining() {
        let mut config = base_config();
        config.chiplets = 2;
        config.cores = 16;
        config.arrivals = poisson(0.3, 4_000_000, 5);
        let report = run_serving(&config).unwrap();
        assert!(report.served() > 0);
        let traditional = report
            .strategies
            .iter()
            .find(|s| s.strategy == ServingStrategy::Traditional)
            .expect("traditional profile");
        assert!(traditional.interval_cycles <= traditional.latency_cycles);
        assert!(traditional.min_stage_occupancy > 0.0);
    }

    #[test]
    fn whole_chiplet_loss_restages_the_pipeline_on_survivors() {
        let mut config = base_config();
        config.chiplets = 4;
        config.cores = 4;
        config.arrivals = poisson(0.3, 4_000_000, 5);
        config.faults = vec![chiplet_stream_fault(&config, 2, 1_200_000).unwrap()];
        let report = run_serving(&config).unwrap();
        assert!(report.halted_at.is_none(), "a single chiplet loss must not halt the package");
        assert_eq!(report.recoveries.len(), 1, "one chiplet death, exactly one recovery");
        assert_eq!(report.recoveries[0].dead_cores.len(), 4, "the whole chiplet died");
        assert!(report.served() > 0);
        assert_eq!(
            report.outcomes.total() as usize,
            report.offered,
            "every request ends in a typed outcome"
        );
        assert_eq!(report.phases.len(), 2, "the fault splits the run into two phases");
        // The degraded profile is a genuine MCM restage: fewer, fatter
        // stages over the three survivor chiplets — not a mesh-grouping
        // fallback.
        let traditional = report
            .strategies
            .iter()
            .find(|s| s.strategy == ServingStrategy::Traditional)
            .expect("traditional profile survives");
        assert_eq!(traditional.stages, 3, "four chiplet stages shrink to three survivors");
        assert!(traditional.min_stage_occupancy > 0.0);
    }

    #[test]
    fn chiplet_stream_faults_reject_non_package_configs() {
        let flat = base_config();
        assert!(chiplet_stream_fault(&flat, 0, 100).is_err(), "flat mesh has no chiplets");
        let mut mcm = base_config();
        mcm.chiplets = 2;
        mcm.cores = 8;
        assert!(chiplet_stream_fault(&mcm, 2, 100).is_err(), "chiplet id out of range");
        let f = chiplet_stream_fault(&mcm, 1, 100).unwrap();
        assert_eq!(f.at_cycle, 100);
        assert_eq!(f.dead_cores.len(), 8, "the fault covers the whole chiplet");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let lats: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lats, 0.50), 50);
        assert_eq!(percentile(&lats, 0.95), 95);
        assert_eq!(percentile(&lats, 0.99), 99);
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn service_capacity_is_positive_and_batch_monotone() {
        let config = base_config();
        let c4 = service_capacity_rpmc(&config).unwrap();
        let mut one = config.clone();
        one.max_batch = 1;
        let c1 = service_capacity_rpmc(&one).unwrap();
        assert!(c4 > 0.0);
        assert!(c4 > c1, "batching must raise capacity ({c4} vs {c1})");
    }
}
