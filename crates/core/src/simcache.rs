//! Cross-sweep NoC simulation memoization.
//!
//! A NoC run is a pure function of the triple *(configuration, fault
//! model, message trace)*: [`Simulator::run`] resets every piece of
//! mutable state — router queues, NIC protocol state, the fault RNG —
//! before stepping, so two runs with an identical triple produce
//! bit-identical [`SimReport`]s (the `equivalence` and golden tests in
//! `lts-noc` pin this). The experiment sweeps exploit that heavily:
//! strategies share dense early layers, effort presets re-evaluate the
//! same plans, and ablations re-simulate unchanged transitions. This
//! module collapses each repeated triple to one simulation.
//!
//! The cache key is the FNV-1a 64-bit hash (the same content hash the
//! snapshot format uses, [`lts_nn::saved::fnv1a64`]) over a canonical
//! `serde_json` encoding of the triple. The full encoding is stored next
//! to each cached report and compared byte-for-byte on lookup, so a hash
//! collision degrades to a miss instead of returning a wrong report.
//!
//! The cache is process-global and thread-safe. Set `LTS_SIM_CACHE=0` to
//! disable it (every call then simulates); [`reset`] clears entries and
//! counters, [`stats`] exposes hit/miss totals for benches and sweeps.
//!
//! Callers whose runs are *not* pure functions of the triple — the
//! serving simulator's entry bursts depend on the arrival seed and
//! batch composition — use [`run_cached_keyed`] to fold an opaque
//! context string into the key.

use lts_noc::traffic::Message;
use lts_noc::{FaultModel, NocConfig, NocError, SimReport, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// Snapshot of the cache's lifetime counters (see [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real simulation.
    pub misses: u64,
    /// Reports currently stored.
    pub entries: usize,
}

/// Per-evaluation accounting of how much NoC simulation was consumed
/// versus answered from this cache. Carried on
/// [`SystemReport`](crate::SystemReport) and merged across recovery
/// segments, so sweeps and recovery summaries can tell cached from
/// simulated work apart without reaching for the process-global
/// [`stats`] counters.
///
/// `cycles_simulated` / `cycles_fast_forwarded` count only runs that
/// actually stepped the simulator — a cache hit contributes to
/// `cache_hits` and nothing else.
///
/// Equality is intentionally vacuous: cache temperature is an artifact
/// of run order, not a property of the modeled system, so two otherwise
/// identical reports (one warmed, one cold) still compare equal — the
/// recovery determinism tests rely on whole-report `==`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SimUsage {
    /// Transitions that fell through to a real simulation.
    pub sims: u64,
    /// Transitions answered from the cross-sweep cache.
    pub cache_hits: u64,
    /// Cycles the active-set stepper evaluated, over the simulated runs.
    pub cycles_simulated: u64,
    /// Idle cycles skipped by fast-forward, over the simulated runs.
    pub cycles_fast_forwarded: u64,
}

impl SimUsage {
    /// Total lookups (simulated + cached).
    pub fn lookups(&self) -> u64 {
        self.sims.saturating_add(self.cache_hits)
    }

    /// Folds another evaluation's usage into this one.
    pub fn merge(&mut self, other: &SimUsage) {
        self.sims = self.sims.saturating_add(other.sims);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cycles_simulated = self.cycles_simulated.saturating_add(other.cycles_simulated);
        self.cycles_fast_forwarded =
            self.cycles_fast_forwarded.saturating_add(other.cycles_fast_forwarded);
    }
}

impl PartialEq for SimUsage {
    fn eq(&self, _: &Self) -> bool {
        true // see type docs: cache temperature is not semantic identity
    }
}

/// Entry cap: sweeps re-simulate a bounded set of transitions, so this is
/// generous; beyond it new triples still simulate, they just stop being
/// recorded (counted as misses).
const MAX_ENTRIES: usize = 8192;

/// One memoized simulation: the canonical key encoding (kept for
/// collision verification) and the report it produced.
struct Entry {
    encoding: Vec<u8>,
    report: SimReport,
}

/// Hash-indexed store plus lifetime counters.
#[derive(Default)]
struct Cache {
    map: HashMap<u64, Vec<Entry>>,
    entries: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Records a hit or a miss and returns the hit's report.
    fn lookup(&mut self, hash: u64, encoding: &[u8]) -> Option<SimReport> {
        let hit = self
            .map
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|e| e.encoding == encoding))
            .map(|e| e.report.clone());
        match hit {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        hit
    }

    /// Stores a freshly simulated report unless the cache is full or a
    /// concurrent caller already stored the same triple.
    fn insert(&mut self, hash: u64, encoding: Vec<u8>, report: &SimReport) {
        if self.entries >= MAX_ENTRIES {
            return;
        }
        let bucket = self.map.entry(hash).or_default();
        if bucket.iter().all(|e| e.encoding != encoding) {
            bucket.push(Entry { encoding, report: report.clone() });
            self.entries += 1;
        }
    }

    fn stats(&self) -> SimCacheStats {
        SimCacheStats { hits: self.hits, misses: self.misses, entries: self.entries }
    }
}

/// A thread-safe memoization store. The process-global instance behind
/// [`run_cached`]/[`stats`]/[`reset`] is the normal entry point; tests
/// construct private instances for deterministic counters.
#[derive(Default)]
struct SharedCache(Mutex<Option<Cache>>);

impl SharedCache {
    // The `Option` exists only because `HashMap::new` is not const:
    // `locked` materializes the cache on first touch.
    fn locked<R>(&self, f: impl FnOnce(&mut Cache) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(guard.get_or_insert_with(Cache::default))
    }

    fn run_cached(
        &self,
        sim: &mut Simulator,
        config: &NocConfig,
        fault: &FaultModel,
        messages: &[Message],
        context: Option<&str>,
        usage: &mut SimUsage,
    ) -> Result<SimReport, NocError> {
        let simulate = |sim: &mut Simulator, usage: &mut SimUsage| {
            let report = sim.run(messages)?;
            usage.sims = usage.sims.saturating_add(1);
            usage.cycles_simulated = usage.cycles_simulated.saturating_add(report.cycles_simulated);
            usage.cycles_fast_forwarded =
                usage.cycles_fast_forwarded.saturating_add(report.cycles_fast_forwarded);
            Ok(report)
        };
        if !enabled() {
            return simulate(sim, usage);
        }
        // A keyed lookup encodes a quad, an unkeyed one the plain triple:
        // different JSON arity, so a keyed entry can never alias an
        // unkeyed one even if the context string were empty.
        let encoded = match context {
            None => serde_json::to_string(&(config, fault, messages)),
            Some(ctx) => serde_json::to_string(&(config, fault, messages, ctx)),
        };
        let Ok(encoding) = encoded.map(String::into_bytes) else {
            return simulate(sim, usage);
        };
        let hash = lts_nn::saved::fnv1a64(&encoding);
        if let Some(report) = self.locked(|c| c.lookup(hash, &encoding)) {
            usage.cache_hits = usage.cache_hits.saturating_add(1);
            return Ok(report);
        }
        // Simulate outside the lock: concurrent sweeps may duplicate a
        // miss, but they never serialize on each other's simulations.
        let report = simulate(sim, usage)?;
        self.locked(|c| c.insert(hash, encoding, &report));
        Ok(report)
    }
}

static CACHE: SharedCache = SharedCache(Mutex::new(None));

/// Whether memoization is active (`LTS_SIM_CACHE=0` disables it).
pub fn enabled() -> bool {
    std::env::var("LTS_SIM_CACHE").map_or(true, |v| v != "0")
}

/// Clears every cached report and zeroes the hit/miss counters.
pub fn reset() {
    CACHE.locked(|c| *c = Cache::default());
}

/// Lifetime hit/miss counters and current entry count.
pub fn stats() -> SimCacheStats {
    CACHE.locked(|c| c.stats())
}

/// Runs `messages` through `sim`, memoized on the `(config, fault,
/// messages)` triple, and accounts the lookup into `usage`.
///
/// On a hit the stored report is cloned back without stepping the
/// simulator. On a miss (or when the cache is disabled, or the triple
/// fails to encode — e.g. a non-finite fault rate, which JSON cannot
/// represent) the simulation runs normally; successful reports are
/// inserted, errors are never cached.
///
/// # Errors
///
/// Exactly those of [`Simulator::run`].
pub fn run_cached(
    sim: &mut Simulator,
    config: &NocConfig,
    fault: &FaultModel,
    messages: &[Message],
    usage: &mut SimUsage,
) -> Result<SimReport, NocError> {
    CACHE.run_cached(sim, config, fault, messages, None, usage)
}

/// Like [`run_cached`], but the key additionally covers an opaque
/// `context` string. The serving path uses this to fold the arrival
/// seed and batch composition into the key: two sweeps at different
/// rates or seeds replay physically identical entry bursts, and without
/// the context they would alias even though the surrounding serving
/// state differs. Keyed and unkeyed entries never alias each other (the
/// encodings have different arity).
///
/// # Errors
///
/// Exactly those of [`Simulator::run`].
pub fn run_cached_keyed(
    sim: &mut Simulator,
    config: &NocConfig,
    fault: &FaultModel,
    messages: &[Message],
    context: &str,
    usage: &mut SimUsage,
) -> Result<SimReport, NocError> {
    CACHE.run_cached(sim, config, fault, messages, Some(context), usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_noc::NocConfig;

    // Tests use private `SharedCache` instances, not the process-global
    // one: the global's counters move under concurrently running system
    // tests, so exact-count assertions against it would be flaky.

    fn trace() -> Vec<Message> {
        vec![Message::new(0, 5, 256, 0), Message::new(3, 12, 1024, 40)]
    }

    #[test]
    fn hit_returns_bit_identical_report_without_resimulating() {
        let cache = SharedCache::default();
        let config = NocConfig::paper_16core();
        let fault = FaultModel::none();
        let mut sim = Simulator::with_faults(config, fault.clone()).unwrap();
        let mut usage = SimUsage::default();
        let first =
            cache.run_cached(&mut sim, &config, &fault, &trace(), None, &mut usage).unwrap();
        let again =
            cache.run_cached(&mut sim, &config, &fault, &trace(), None, &mut usage).unwrap();
        assert_eq!(first, again);
        assert_eq!(first, sim.run(&trace()).unwrap(), "cache must match a direct run");
        let s = cache.locked(|c| c.stats());
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!((usage.sims, usage.cache_hits, usage.lookups()), (1, 1, 2));
        assert_eq!(
            usage.cycles_simulated, first.cycles_simulated,
            "the hit must not re-account the stored run's stepped cycles"
        );
        assert_eq!(usage.cycles_fast_forwarded, first.cycles_fast_forwarded);
    }

    #[test]
    fn sim_usage_merges_and_compares_vacuously() {
        let mut a =
            SimUsage { sims: 1, cache_hits: 2, cycles_simulated: 10, cycles_fast_forwarded: 20 };
        let b = SimUsage {
            sims: u64::MAX,
            cache_hits: 1,
            cycles_simulated: 5,
            cycles_fast_forwarded: 7,
        };
        a.merge(&b);
        assert_eq!(a.sims, u64::MAX, "merge saturates");
        assert_eq!((a.cache_hits, a.cycles_simulated, a.cycles_fast_forwarded), (3, 15, 27));
        // Cache temperature never breaks report equality.
        assert_eq!(a, SimUsage::default());
    }

    #[test]
    fn distinct_triples_do_not_alias() {
        let cache = SharedCache::default();
        let config = NocConfig::paper_16core();
        let clean = FaultModel::none();
        let drops = FaultModel::none().with_seed(7).drop_rate(0.05);
        let mut sim_clean = Simulator::with_faults(config, clean.clone()).unwrap();
        let mut sim_drops = Simulator::with_faults(config, drops.clone()).unwrap();
        let mut usage = SimUsage::default();
        let a =
            cache.run_cached(&mut sim_clean, &config, &clean, &trace(), None, &mut usage).unwrap();
        let b =
            cache.run_cached(&mut sim_drops, &config, &drops, &trace(), None, &mut usage).unwrap();
        assert!(!a.faults.any());
        assert!(b.faults.any(), "a 5% drop rate over this trace must fire");
        assert_ne!(a, b);
        let s = cache.locked(|c| c.stats());
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn topologies_with_identical_geometry_do_not_alias() {
        // An 8×4 single-chip mesh and a 2×(4×4)-chiplet package have the
        // same node grid but different link pricing: the key must keep
        // their triples apart.
        let cache = SharedCache::default();
        let mesh = NocConfig::paper_cores(32).unwrap();
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        assert_eq!(mesh.nodes(), mcm.nodes());
        let fault = FaultModel::none();
        let mut sim_mesh = Simulator::with_faults(mesh, fault.clone()).unwrap();
        let mut sim_mcm = Simulator::with_faults(mcm, fault.clone()).unwrap();
        let mut usage = SimUsage::default();
        let cross = vec![Message::new(0, 31, 2048, 0)];
        let a = cache.run_cached(&mut sim_mesh, &mesh, &fault, &cross, None, &mut usage).unwrap();
        let b = cache.run_cached(&mut sim_mcm, &mcm, &fault, &cross, None, &mut usage).unwrap();
        assert_eq!(a.inter_chip_traversals, 0);
        assert!(b.inter_chip_traversals > 0, "0→31 must cross the seam");
        assert_ne!(a, b, "seam pricing must show up in the report");
        let s = cache.locked(|c| c.stats());
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn serving_contexts_with_identical_triples_do_not_alias() {
        // The serving path replays physically identical entry bursts
        // under different arrival seeds/rates: the context must keep
        // those lookups apart, and keyed entries must never alias the
        // unkeyed triple either.
        let cache = SharedCache::default();
        let config = NocConfig::paper_16core();
        let fault = FaultModel::none();
        let mut sim = Simulator::with_faults(config, fault.clone()).unwrap();
        let mut usage = SimUsage::default();
        let ctx_a = "serve:seed=1:proc=poisson@4:batch=2:ii=100";
        let ctx_b = "serve:seed=2:proc=poisson@4:batch=2:ii=100";
        let a =
            cache.run_cached(&mut sim, &config, &fault, &trace(), Some(ctx_a), &mut usage).unwrap();
        let b =
            cache.run_cached(&mut sim, &config, &fault, &trace(), Some(ctx_b), &mut usage).unwrap();
        let unkeyed =
            cache.run_cached(&mut sim, &config, &fault, &trace(), None, &mut usage).unwrap();
        assert_eq!(a, b, "same physical trace, same report");
        assert_eq!(a, unkeyed);
        let s = cache.locked(|c| c.stats());
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 3), "three distinct keys, no aliasing");
        // Replaying a known context is a hit.
        let again =
            cache.run_cached(&mut sim, &config, &fault, &trace(), Some(ctx_a), &mut usage).unwrap();
        assert_eq!(again, a);
        let s = cache.locked(|c| c.stats());
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 3));
        assert_eq!((usage.sims, usage.cache_hits), (3, 1));
    }

    #[test]
    fn global_cache_agrees_with_direct_run() {
        // The global cache is shared with concurrently running tests, so
        // only the monotonic effect of one extra lookup is asserted.
        let config = NocConfig::paper_16core();
        let fault = FaultModel::none();
        let mut sim = Simulator::with_faults(config, fault.clone()).unwrap();
        let before = stats();
        let direct = sim.run(&trace()).unwrap();
        let mut usage = SimUsage::default();
        let via_cache = run_cached(&mut sim, &config, &fault, &trace(), &mut usage).unwrap();
        assert_eq!(direct, via_cache);
        let after = stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
    }
}
