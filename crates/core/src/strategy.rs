//! The three parallelization strategies of §IV.

use lts_nn::prune::PruneCriterion;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the group-Lasso sparsity strength is distributed over
/// producer→consumer weight blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SparsityScheme {
    /// **SS**: one strength for every block of a layer — structured
    /// sparsification without distance awareness.
    Ss,
    /// **SS_Mask**: per-block strength proportional to
    /// `hop_distance^power` (the paper's factor mask is `power = 1`;
    /// other powers are ablation points). Diagonal blocks get strength 0.
    SsMask {
        /// Exponent on the hop distance.
        power: f32,
    },
}

impl SparsityScheme {
    /// The paper's SS_Mask (linear distance weighting).
    pub fn mask() -> Self {
        SparsityScheme::SsMask { power: 1.0 }
    }

    /// Short display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            SparsityScheme::Ss => "SS",
            SparsityScheme::SsMask { .. } => "SS_Mask",
        }
    }
}

impl fmt::Display for SparsityScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A complete parallelization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// §IV-A: partition every layer, broadcast all feature maps between
    /// layers. The baseline all others are normalized against.
    Traditional,
    /// §IV-B: turn designated conv layers into `groups`-way grouped
    /// convolutions; grouped layers need no inter-core traffic.
    StructureLevel {
        /// Grouping degree `n` (the paper sets `n = cores`).
        groups: usize,
    },
    /// §IV-C: train with group Lasso, prune zero blocks, transmit only
    /// surviving producer→consumer feature maps.
    Sparsified {
        /// SS or SS_Mask.
        scheme: SparsityScheme,
        /// Group-Lasso coefficient λ_g.
        lambda: f32,
        /// Post-training prune rule.
        prune: PruneCriterion,
    },
}

impl Strategy {
    /// Table-style label.
    pub fn label(&self) -> String {
        match self {
            Strategy::Traditional => "Baseline".to_string(),
            Strategy::StructureLevel { groups } => format!("Grouped(n={groups})"),
            Strategy::Sparsified { scheme, .. } => scheme.label().to_string(),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(Strategy::Traditional.label(), "Baseline");
        assert_eq!(Strategy::StructureLevel { groups: 16 }.label(), "Grouped(n=16)");
        let ss = Strategy::Sparsified {
            scheme: SparsityScheme::Ss,
            lambda: 0.01,
            prune: PruneCriterion::RmsBelow(0.01),
        };
        assert_eq!(ss.label(), "SS");
        let mask = Strategy::Sparsified {
            scheme: SparsityScheme::mask(),
            lambda: 0.01,
            prune: PruneCriterion::RmsBelow(0.01),
        };
        assert_eq!(mask.label(), "SS_Mask");
    }

    #[test]
    fn default_mask_power_is_linear() {
        assert_eq!(SparsityScheme::mask(), SparsityScheme::SsMask { power: 1.0 });
    }
}
