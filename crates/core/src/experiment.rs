//! One runner per table/figure of the paper's evaluation section.
//!
//! Every runner is deterministic in its [`EffortPreset`] and returns plain
//! data rows; the `lts-bench` binaries print them in the paper's layout
//! and `EXPERIMENTS.md` records paper-vs-measured values.

use crate::pipeline::{
    plan_for_precision, train_baseline, train_sparsified, PipelineConfig, SparsifiedOutcome,
};
use crate::strategy::SparsityScheme;
use crate::system::{SystemModel, SystemReport};
use crate::{CoreError, Result};
use lts_datasets::{presets, TrainTest};
use lts_nn::models;
use lts_nn::prune::PruneCriterion;
use lts_nn::trainer::TrainConfig;
use lts_nn::Network;
use lts_partition::comm::{dense_volumes, VolumeRow};
use lts_tensor::par;
use serde::{Deserialize, Serialize};

/// How much work the experiment runners do — `quick` for tests,
/// `paper` for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffortPreset {
    /// Training samples per dataset.
    pub train_samples: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Main-phase epochs.
    pub epochs: usize,
    /// Post-prune fine-tuning epochs.
    pub fine_tune_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Master seed (data, init and shuffling all derive from it).
    pub seed: u64,
}

impl EffortPreset {
    /// Small and fast — integration tests.
    pub fn quick() -> Self {
        Self {
            train_samples: 192,
            test_samples: 96,
            epochs: 3,
            fine_tune_epochs: 1,
            batch_size: 32,
            seed: 2019,
        }
    }

    /// The benchmark-harness scale (minutes of CPU time in total).
    pub fn paper() -> Self {
        Self {
            train_samples: 480,
            test_samples: 200,
            epochs: 6,
            fine_tune_epochs: 2,
            batch_size: 32,
            seed: 2019,
        }
    }

    /// The pipeline configuration this preset implies, at the default
    /// learning rate (tuned for the MLP; use
    /// [`EffortPreset::pipeline_config_with`] for other model families).
    pub fn pipeline_config(&self) -> PipelineConfig {
        self.pipeline_config_with(0.06, 1)
    }

    /// Pipeline configuration with a model-family learning rate and an
    /// epoch multiplier (deep conv stacks train at lower rates for more
    /// epochs: LeNet 0.005×1, ConvNet/CaffeNet 0.02×2).
    pub fn pipeline_config_with(&self, lr: f32, epochs_mul: usize) -> PipelineConfig {
        PipelineConfig {
            train: TrainConfig {
                epochs: self.epochs * epochs_mul.max(1),
                batch_size: self.batch_size,
                lr,
                momentum: 0.9,
                weight_decay: 1e-4,
                lr_decay: 0.85,
                clip_grad_norm: 5.0,
                seed: self.seed,
            },
            fine_tune_epochs: self.fine_tune_epochs,
            ..PipelineConfig::default()
        }
    }
}

/// Learning-rate/epoch presets per model family (empirically the largest
/// stable rates; see `DESIGN.md`).
pub mod train_presets {
    /// `(learning rate, epoch multiplier)` for the MLP.
    pub const MLP: (f32, usize) = (0.06, 1);
    /// `(learning rate, epoch multiplier)` for LeNet.
    pub const LENET: (f32, usize) = (0.005, 1);
    /// `(learning rate, epoch multiplier)` for the CIFAR ConvNet, the
    /// ImageNet10 ConvNet variants and CaffeNet.
    pub const CONVNET: (f32, usize) = (0.02, 2);
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: analytic data-moving volume per layer transition under
/// traditional parallelization, for all five benchmark networks.
///
/// # Errors
///
/// Propagates plan-construction errors.
pub fn table1_rows(cores: usize) -> Result<Vec<VolumeRow>> {
    let specs = [
        lts_nn::descriptor::mlp_spec(),
        lts_nn::descriptor::lenet_spec(),
        lts_nn::descriptor::convnet_spec(),
        lts_nn::descriptor::alexnet_spec(),
        lts_nn::descriptor::vgg19_spec(),
    ];
    par::par_map(&specs, |_, s| dense_volumes(s, cores).map_err(CoreError::from))
        .into_iter()
        .collect()
}

// ---------------------------------------------------------------------------
// Table III / Fig. 7 — structure-level parallelization
// ---------------------------------------------------------------------------

/// One Table III row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureRow {
    /// Variant name (Parallel#1/2/3).
    pub name: String,
    /// Conv kernel counts (conv1-conv2-conv3).
    pub kernels: [usize; 3],
    /// Grouping degree `n`.
    pub groups: usize,
    /// Test accuracy.
    pub accuracy: f32,
    /// Single-pass speedup vs Parallel#1.
    pub speedup: f64,
    /// Normalized communication speedup vs Parallel#1 (Fig. 7 right axis
    /// counterpart; ∞ when the variant eliminates all traffic).
    pub comm_speedup: f64,
    /// NoC energy reduction vs Parallel#1.
    pub comm_energy_reduction: f64,
    /// Total (compute+NoC) energy reduction vs Parallel#1.
    pub total_energy_reduction: f64,
}

/// Table III / Fig. 7: the three ConvNet variants on 16 cores.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn table3_rows(preset: &EffortPreset) -> Result<Vec<StructureRow>> {
    let (lr, mul) = train_presets::CONVNET;
    table3_rows_with_config(preset, &preset.pipeline_config_with(lr, mul))
}

/// [`table3_rows`] under an explicit pipeline configuration — the hook the
/// quantization sweep uses to rerun the structure-level strategy at
/// another deployment precision.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn table3_rows_with_config(
    preset: &EffortPreset,
    config: &PipelineConfig,
) -> Result<Vec<StructureRow>> {
    structure_rows_for_cores(preset, config, 16, true)
}

fn structure_rows_for_cores(
    preset: &EffortPreset,
    config: &PipelineConfig,
    cores: usize,
    include_parallel2: bool,
) -> Result<Vec<StructureRow>> {
    let data = presets::synth_imagenet10(preset.train_samples, preset.test_samples, preset.seed);
    let config = *config;
    let model = SystemModel::paper(cores)?;

    let mut variants: Vec<(String, [usize; 3], usize)> =
        vec![("Parallel#1".into(), [64, 128, 256], 1)];
    if include_parallel2 {
        variants.push(("Parallel#2".into(), [64, 128, 256], cores));
    }
    variants.push(("Parallel#3".into(), [64, 160, 320], cores));

    let mut rows = Vec::with_capacity(variants.len());
    let mut baseline_report: Option<SystemReport> = None;
    for (name, kernels, groups) in variants {
        let _variant_probe = lts_obs::span(&format!("experiment.variant.{name}"));
        let net = models::convnet_variant(kernels, groups, preset.seed)?;
        let outcome = train_baseline(net, &data, &config)?;
        let plan = plan_for_precision(&outcome.network, cores, false, true, config.precision)?;
        let report = model.evaluate(&plan)?;
        let base = baseline_report.get_or_insert_with(|| report.clone());
        let comm_speedup = if report.comm_cycles == 0 {
            f64::INFINITY
        } else {
            base.comm_cycles as f64 / report.comm_cycles as f64
        };
        rows.push(StructureRow {
            name,
            kernels,
            groups,
            accuracy: outcome.test_accuracy,
            speedup: report.speedup_vs(base),
            comm_speedup,
            comm_energy_reduction: report.noc_energy_reduction_vs(base),
            total_energy_reduction: 1.0
                - report.total_energy_pj() / base.total_energy_pj().max(f64::MIN_POSITIVE),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table IV / Table VI — communication-aware sparsified parallelization
// ---------------------------------------------------------------------------

/// One Table IV/VI row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsifiedRow {
    /// Network name.
    pub network: String,
    /// Core count.
    pub cores: usize,
    /// `Baseline`, `SS` or `SS_Mask`.
    pub scheme: String,
    /// Test accuracy.
    pub accuracy: f32,
    /// NoC traffic as a fraction of the baseline (1.0 = 100 %).
    pub traffic_rate: f64,
    /// Single-pass speedup vs the baseline.
    pub speedup: f64,
    /// NoC energy reduction vs the baseline.
    pub energy_reduction: f64,
}

/// Per-network group-Lasso hyper-parameters.
///
/// Mirroring the paper's methodology, λ_g is not a single magic number:
/// each scheme is trained at every λ in `lambda_grid` and the run with the
/// **lowest NoC traffic whose accuracy stays within
/// `accuracy_tolerance` of the baseline** is reported. This is what "let
/// the network learn a configuration that is both accurate and
/// communication-reduced" means operationally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsifyParams {
    /// Candidate group-Lasso coefficients (each is trained; runs execute
    /// in parallel worker threads).
    pub lambda_grid: Vec<f32>,
    /// Prune rule applied after training.
    pub prune: PruneCriterion,
    /// Maximum allowed accuracy drop below the baseline.
    pub accuracy_tolerance: f32,
}

impl Default for SparsifyParams {
    fn default() -> Self {
        Self {
            lambda_grid: vec![0.5, 1.0, 2.0, 4.0],
            prune: PruneCriterion::RmsBelowRelative(0.35),
            accuracy_tolerance: 0.02,
        }
    }
}

/// Runs Baseline / SS / SS_Mask for one network builder and returns the
/// three rows.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn sparsified_experiment(
    network_name: &str,
    build: impl Fn(u64) -> lts_nn::Result<Network> + Sync,
    data: &TrainTest,
    cores: usize,
    config: &PipelineConfig,
    seed: u64,
    params: SparsifyParams,
) -> Result<Vec<SparsifiedRow>> {
    let config = *config;
    let model = SystemModel::paper(cores)?;

    // Baseline.
    let baseline = train_baseline(build(seed)?, data, &config)?;
    let base_plan = plan_for_precision(&baseline.network, cores, false, true, config.precision)?;
    let base_report = model.evaluate(&base_plan)?;
    let mut rows = vec![SparsifiedRow {
        network: network_name.to_string(),
        cores,
        scheme: "Baseline".into(),
        accuracy: baseline.test_accuracy,
        traffic_rate: 1.0,
        speedup: 1.0,
        energy_reduction: 0.0,
    }];

    for scheme in [SparsityScheme::Ss, SparsityScheme::mask()] {
        // Train the whole λ grid on the execution engine; every run is
        // independent and deterministic, and par_map returns results in
        // grid order regardless of scheduling.
        let candidates = par::par_map(&params.lambda_grid, |_, &lambda| {
            let outcome =
                train_sparsified(build(seed)?, data, &config, cores, scheme, lambda, params.prune)?;
            let plan = plan_for_precision(&outcome.network, cores, true, true, config.precision)?;
            let report = model.evaluate(&plan)?;
            Ok::<(f32, SparsifiedOutcome, SystemReport), CoreError>((lambda, outcome, report))
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;

        // Paper methodology: lowest traffic subject to accuracy staying
        // within tolerance of the baseline; if nothing qualifies, the most
        // accurate run.
        let floor = baseline.test_accuracy - params.accuracy_tolerance;
        let chosen = candidates
            .iter()
            .filter(|(_, o, _)| o.test_accuracy >= floor)
            .min_by(|a, b| a.2.traffic_bytes.cmp(&b.2.traffic_bytes))
            .or_else(|| {
                candidates.iter().max_by(|a, b| {
                    a.1.test_accuracy
                        .partial_cmp(&b.1.test_accuracy)
                        .expect("accuracies are finite")
                })
            })
            .ok_or_else(|| CoreError::BadConfig("empty lambda grid".into()))?;
        let (_, outcome, report) = chosen;
        rows.push(SparsifiedRow {
            network: network_name.to_string(),
            cores,
            scheme: scheme.label().to_string(),
            accuracy: outcome.test_accuracy,
            traffic_rate: report.traffic_rate_vs(&base_report),
            speedup: report.speedup_vs(&base_report),
            energy_reduction: report.noc_energy_reduction_vs(&base_report),
        });
    }
    Ok(rows)
}

/// Table IV: MLP, LeNet, ConvNet, CaffeNet × {Baseline, SS, SS_Mask} on
/// 16 cores.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn table4_rows(preset: &EffortPreset) -> Result<Vec<SparsifiedRow>> {
    let mut rows = Vec::new();
    let p = preset;

    let mnist = presets::synth_mnist(p.train_samples, p.test_samples, p.seed);
    let (lr, mul) = train_presets::MLP;
    rows.extend(sparsified_experiment(
        "MLP",
        |s| models::mlp(28 * 28, 10, s),
        &mnist,
        16,
        &p.pipeline_config_with(lr, mul),
        p.seed,
        SparsifyParams::default(),
    )?);
    let (lr, mul) = train_presets::LENET;
    rows.extend(sparsified_experiment(
        "LeNet",
        |s| models::lenet(10, s),
        &mnist,
        16,
        &p.pipeline_config_with(lr, mul),
        p.seed,
        SparsifyParams::default(),
    )?);

    let (lr, mul) = train_presets::CONVNET;
    let cifar = presets::synth_cifar10(p.train_samples, p.test_samples, p.seed);
    rows.extend(sparsified_experiment(
        "ConvNet",
        |s| models::convnet(10, s),
        &cifar,
        16,
        &p.pipeline_config_with(lr, mul),
        p.seed,
        SparsifyParams { lambda_grid: vec![0.5, 1.5, 3.0], ..SparsifyParams::default() },
    )?);

    let imagenet = presets::synth_imagenet_small(p.train_samples, p.test_samples, p.seed);
    rows.extend(sparsified_experiment(
        "CaffeNet",
        |s| models::caffenet_small(10, s),
        &imagenet,
        16,
        &p.pipeline_config_with(lr, mul),
        p.seed,
        // CaffeNet sparsifies seven layers at once (conv2–conv5, ip1–ip3)
        // at a low learning rate: proximal thresholds that suit the small
        // nets destroy it, so its λ grid sits an order of magnitude lower.
        SparsifyParams {
            lambda_grid: vec![0.1, 0.4, 1.2],
            prune: PruneCriterion::RmsBelowRelative(0.25),
            ..SparsifyParams::default()
        },
    )?);
    Ok(rows)
}

/// Table VI: LeNet sparsified on 8 and 32 cores.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn table6_rows(preset: &EffortPreset) -> Result<Vec<SparsifiedRow>> {
    let data = presets::synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let (lr, mul) = train_presets::LENET;
    let config = preset.pipeline_config_with(lr, mul);
    let mut rows = Vec::new();
    for cores in [8usize, 32] {
        rows.extend(sparsified_experiment(
            "LeNet",
            |s| models::lenet(10, s),
            &data,
            cores,
            &config,
            preset.seed,
            SparsifyParams::default(),
        )?);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table V / Fig. 8 — scalability of structure-level parallelization
// ---------------------------------------------------------------------------

/// One Table V row (plus the Fig. 8 energy series).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Core count (= grouping degree `n`).
    pub cores: usize,
    /// Test accuracy of the grouped Parallel#3 variant.
    pub accuracy: f32,
    /// Speedup vs the traditional parallelization of the same network on
    /// the same core count.
    pub speedup: f64,
    /// Communication energy reduction vs the same baseline (Fig. 8).
    pub comm_energy_reduction: f64,
    /// Communication speedup vs the same baseline (Fig. 8).
    pub comm_speedup: f64,
}

/// Table V / Fig. 8: Parallel#3 on 4, 8, 16 and 32 cores.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn table5_rows(preset: &EffortPreset) -> Result<Vec<ScaleRow>> {
    // Each core count is an independent train+simulate run; fan them out
    // on the engine and collect in fixed core-count order.
    let core_counts = [4usize, 8, 16, 32];
    let (lr, mul) = train_presets::CONVNET;
    let config = preset.pipeline_config_with(lr, mul);
    par::par_map(&core_counts, |_, &cores| {
        let pair = structure_rows_for_cores(preset, &config, cores, false)?;
        let p3 = pair
            .iter()
            .find(|r| r.name == "Parallel#3")
            .expect("structure rows always include Parallel#3");
        Ok(ScaleRow {
            cores,
            accuracy: p3.accuracy,
            speedup: p3.speedup,
            comm_energy_reduction: p3.comm_energy_reduction,
            comm_speedup: p3.comm_speedup,
        })
    })
    .into_iter()
    .collect()
}

// ---------------------------------------------------------------------------
// Extension experiments (beyond the paper's tables)
// ---------------------------------------------------------------------------

/// One row of the combined-strategy extension experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedRow {
    /// Strategy label.
    pub scheme: String,
    /// Test accuracy.
    pub accuracy: f32,
    /// NoC traffic vs the traditional baseline.
    pub traffic_rate: f64,
    /// Single-pass speedup vs the traditional baseline.
    pub speedup: f64,
    /// NoC energy reduction vs the traditional baseline.
    pub energy_reduction: f64,
}

/// Extension: §IV-B and §IV-C are orthogonal — grouped conv layers kill
/// their transitions *by construction*, and the remaining dense layers'
/// transitions can still be sparsified away with SS_Mask. Compares
/// Traditional vs Grouped vs Grouped+SS_Mask on the ImageNet10 ConvNet.
///
/// # Errors
///
/// Propagates training/plan/simulation errors.
pub fn combined_strategy_rows(preset: &EffortPreset) -> Result<Vec<CombinedRow>> {
    let data = presets::synth_imagenet10(preset.train_samples, preset.test_samples, preset.seed);
    let (lr, mul) = train_presets::CONVNET;
    let config = preset.pipeline_config_with(lr, mul);
    let cores = 16;
    let model = SystemModel::paper(cores)?;

    // Traditional baseline.
    let dense =
        train_baseline(models::convnet_variant([64, 128, 256], 1, preset.seed)?, &data, &config)?;
    let dense_report = model.evaluate(&plan_for_precision(
        &dense.network,
        cores,
        false,
        true,
        config.precision,
    )?)?;
    let mut rows = vec![CombinedRow {
        scheme: "Traditional".into(),
        accuracy: dense.test_accuracy,
        traffic_rate: 1.0,
        speedup: 1.0,
        energy_reduction: 0.0,
    }];

    // Structure-level only.
    let grouped = train_baseline(
        models::convnet_variant([64, 128, 256], cores, preset.seed)?,
        &data,
        &config,
    )?;
    let grouped_report = model.evaluate(&plan_for_precision(
        &grouped.network,
        cores,
        false,
        true,
        config.precision,
    )?)?;
    rows.push(CombinedRow {
        scheme: format!("Grouped(n={cores})"),
        accuracy: grouped.test_accuracy,
        traffic_rate: grouped_report.traffic_rate_vs(&dense_report),
        speedup: grouped_report.speedup_vs(&dense_report),
        energy_reduction: grouped_report.noc_energy_reduction_vs(&dense_report),
    });

    // Combined: the grouped network's remaining dense transitions (into
    // ip1) sparsified with SS_Mask.
    let combined = crate::pipeline::train_sparsified(
        models::convnet_variant([64, 128, 256], cores, preset.seed)?,
        &data,
        &config,
        cores,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )?;
    let combined_report = model.evaluate(&plan_for_precision(
        &combined.network,
        cores,
        true,
        true,
        config.precision,
    )?)?;
    rows.push(CombinedRow {
        scheme: format!("Grouped(n={cores})+SS_Mask"),
        accuracy: combined.test_accuracy,
        traffic_rate: combined_report.traffic_rate_vs(&dense_report),
        speedup: combined_report.speedup_vs(&dense_report),
        energy_reduction: combined_report.noc_energy_reduction_vs(&dense_report),
    });
    Ok(rows)
}

/// One row of the throughput-vs-latency extension experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismRow {
    /// `data` (one independent inference per core, DaDianNao/TPU style)
    /// or `model` (this paper: one inference split across all cores).
    pub mode: String,
    /// Latency of one inference, in cycles.
    pub latency_cycles: u64,
    /// Sustained throughput in inferences per million cycles.
    pub throughput_per_mcycle: f64,
}

/// Extension: the §I distinction between throughput-oriented data-level
/// parallelism and the paper's latency-oriented single-pass model
/// parallelism, quantified on one network/core count.
///
/// # Errors
///
/// Propagates plan/simulation errors.
pub fn parallelism_tradeoff(
    spec: &lts_nn::NetworkSpec,
    cores: usize,
) -> Result<Vec<ParallelismRow>> {
    let model = SystemModel::paper(cores)?;
    // Data parallelism: every core runs the whole network by itself.
    let single = model.evaluate(&lts_partition::Plan::dense(spec, 1, 2)?)?;
    // Model parallelism: one pass split across all cores.
    let split = model.evaluate(&lts_partition::Plan::dense(spec, cores, 2)?)?;
    Ok(vec![
        ParallelismRow {
            mode: "data (1 net/core)".into(),
            latency_cycles: single.total_cycles,
            throughput_per_mcycle: cores as f64 / single.total_cycles as f64 * 1e6,
        },
        ParallelismRow {
            mode: format!("model ({cores}-way split)"),
            latency_cycles: split.total_cycles,
            throughput_per_mcycle: 1.0 / split.total_cycles as f64 * 1e6,
        },
    ])
}

// ---------------------------------------------------------------------------
// §III-B motivation — AlexNet communication share
// ---------------------------------------------------------------------------

/// The §III-B claim: the fraction of a single-pass AlexNet inference
/// spent on inter-core communication on a 16-core CMP (paper: ~23 %).
///
/// # Errors
///
/// Propagates plan/simulation errors.
pub fn motivation_comm_share() -> Result<(SystemReport, f64)> {
    let spec = lts_nn::descriptor::alexnet_spec();
    let model = SystemModel::paper(16)?;
    let plan = lts_partition::Plan::dense(&spec, 16, 2)?;
    let report = model.evaluate(&plan)?;
    let share = report.comm_share();
    Ok((report, share))
}

// ---------------------------------------------------------------------------
// Fig. 6(b) — final group-level weight matrix
// ---------------------------------------------------------------------------

/// Fig. 6(b): the group-norm matrix of one sparsified layer (row =
/// producer core, column = consumer core); zero entries are pruned
/// groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMatrix {
    /// Network name.
    pub network: String,
    /// Layer whose weights are shown.
    pub layer: String,
    /// Core count per axis.
    pub cores: usize,
    /// Row-major `cores × cores` block norms.
    pub norms: Vec<f32>,
}

impl GroupMatrix {
    /// Fraction of groups that are exactly zero.
    pub fn zero_fraction(&self) -> f32 {
        if self.norms.is_empty() {
            return 0.0;
        }
        self.norms.iter().filter(|&&n| n == 0.0).count() as f32 / self.norms.len() as f32
    }

    /// Mean hop-weighted surviving norm: how "distant" the remaining
    /// traffic-inducing groups are (lower = more local).
    pub fn mean_surviving_distance(&self, mesh: &lts_noc::Mesh2d) -> f64 {
        let mut total = 0.0f64;
        let mut weight = 0.0f64;
        for p in 0..self.cores {
            for c in 0..self.cores {
                let n = self.norms[p * self.cores + c] as f64;
                if p != c && n > 0.0 {
                    total += mesh.distance(p, c) as f64;
                    weight += 1.0;
                }
            }
        }
        if weight == 0.0 {
            0.0
        } else {
            total / weight
        }
    }
}

/// Trains an MLP with SS_Mask on 16 cores and returns the ip2 group
/// matrix (the Fig. 6(b) artifact).
///
/// # Errors
///
/// Propagates training errors.
pub fn fig6_matrix(preset: &EffortPreset) -> Result<GroupMatrix> {
    let data = presets::synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let outcome = train_sparsified(
        models::mlp(28 * 28, 10, preset.seed)?,
        &data,
        &preset.pipeline_config(),
        16,
        SparsityScheme::mask(),
        2.0,
        SparsifyParams::default().prune,
    )?;
    let spec = outcome.network.spec();
    let plan = lts_partition::Plan::dense(&spec, 16, 2)?;
    let layer = "ip2";
    let layout = plan
        .layer(layer)
        .and_then(|lp| lp.layout.clone())
        .ok_or_else(|| CoreError::BadConfig(format!("layer `{layer}` has no layout")))?;
    let weights = outcome
        .network
        .layer_weight(layer)
        .ok_or_else(|| CoreError::BadConfig(format!("layer `{layer}` missing")))?;
    Ok(GroupMatrix {
        network: "MLP".into(),
        layer: layer.into(),
        cores: 16,
        norms: layout.norm_matrix(weights.value.as_slice()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_known_volumes() {
        let rows = table1_rows(16).unwrap();
        assert_eq!(rows.len(), 5);
        let alexnet = rows.iter().find(|r| r.network == "AlexNet").unwrap();
        assert_eq!(alexnet.layer("conv2").unwrap(), 96 * 27 * 27 * 2 * 15);
        let vgg = rows.iter().find(|r| r.network == "VGG19").unwrap();
        assert!(vgg.total() > alexnet.total());
    }

    #[test]
    fn motivation_comm_share_is_substantial() {
        let (report, share) = motivation_comm_share().unwrap();
        assert!(report.comm_cycles > 0);
        // The paper reports ~23 %; accept a generous band around it
        // (our core/NoC models are reconstructions).
        assert!((0.05..=0.60).contains(&share), "comm share {share}");
    }

    #[test]
    fn parallelism_tradeoff_shows_the_latency_throughput_tension() {
        let rows = parallelism_tradeoff(&lts_nn::descriptor::lenet_spec(), 16).unwrap();
        assert_eq!(rows.len(), 2);
        let (data, model) = (&rows[0], &rows[1]);
        // Model parallelism must cut latency...
        assert!(model.latency_cycles < data.latency_cycles);
        // ...at some cost in aggregate throughput.
        assert!(model.throughput_per_mcycle < data.throughput_per_mcycle);
    }

    #[test]
    fn presets_build_valid_pipeline_configs() {
        let quick = EffortPreset::quick();
        let paper = EffortPreset::paper();
        assert!(paper.train_samples > quick.train_samples);
        assert_eq!(quick.pipeline_config().train.epochs, quick.epochs);
    }
}
