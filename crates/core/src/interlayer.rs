//! Inter-layer (pipelined) model parallelism — the alternative the paper
//! argues *against* in §II-B: "pipelining layers with distinct
//! hyper-parameters cause severe load-imbalance issue on cores".
//!
//! This module implements that alternative so the claim can be
//! quantified: the layer chain is split into contiguous stages, one per
//! core, balancing per-stage compute greedily; activations stream between
//! consecutive stages (mapped to adjacent cores in a snake order across
//! the mesh). The pipeline's throughput is gated by its slowest stage —
//! the load-imbalance factor is exactly the paper's objection.

use crate::Result;
use lts_accel::CoreModel;
use lts_nn::descriptor::NetworkSpec;
use lts_noc::NocConfig;
use serde::{Deserialize, Serialize};

/// A contiguous-stage assignment of layers to cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineMapping {
    /// `stages[s]` = indices into the network's layer list handled by
    /// stage (core) `s`. Contiguous and in order; possibly empty for
    /// trailing cores when there are more cores than layers.
    pub stages: Vec<Vec<usize>>,
}

impl PipelineMapping {
    /// Number of stages (cores).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Number of non-empty stages.
    pub fn active_stages(&self) -> usize {
        self.stages.iter().filter(|s| !s.is_empty()).count()
    }
}

/// Performance of a pipelined mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Compute cycles per stage.
    pub stage_cycles: Vec<u64>,
    /// The slowest stage's cycles — the pipeline interval (1/throughput).
    pub bottleneck_cycles: u64,
    /// Latency of one inference: all stages traversed in sequence plus
    /// inter-stage transfer time (congestion-free estimate).
    pub latency_cycles: u64,
    /// Bytes handed from each stage to the next (length = stages − 1).
    pub inter_stage_bytes: Vec<u64>,
    /// Load imbalance: max stage cycles over mean non-empty stage cycles
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl PipelineReport {
    /// Sustained throughput in inferences per million cycles.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.bottleneck_cycles == 0 {
            return 0.0;
        }
        1e6 / self.bottleneck_cycles as f64
    }
}

/// Greedily splits the layer chain into `cores` contiguous stages,
/// approximately balancing per-stage compute: each stage takes layers
/// until it reaches the ideal share of the total cycles.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn balance_layers(spec: &NetworkSpec, cores: usize, model: &CoreModel) -> PipelineMapping {
    assert!(cores > 0, "cores must be positive");
    let costs: Vec<u64> =
        spec.layers.iter().map(|l| model.layer_cost(l, l.out_dims.0).cycles).collect();
    let total: u64 = costs.iter().sum();
    let ideal = total as f64 / cores as f64;
    let mut stages: Vec<Vec<usize>> = vec![Vec::new(); cores];
    let mut stage = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        let remaining_layers = costs.len() - i;
        let remaining_stages = cores - stage;
        // Close the stage when it reached its share — unless the
        // remaining layers are exactly enough to fill the rest one each.
        let must_stay = remaining_layers <= remaining_stages.saturating_sub(1);
        if !stages[stage].is_empty()
            && stage + 1 < cores
            && (acc as f64 + c as f64 / 2.0 > ideal || must_stay)
        {
            stage += 1;
            acc = 0;
        }
        stages[stage].push(i);
        acc += c;
    }
    PipelineMapping { stages }
}

/// Evaluates a pipelined mapping on the paper's hardware models
/// (congestion-free inter-stage links: stages are mapped to mesh-adjacent
/// cores in snake order, so every transfer is one hop).
///
/// # Errors
///
/// Propagates configuration errors from the NoC config used for link
/// parameters.
pub fn evaluate_pipeline(
    spec: &NetworkSpec,
    mapping: &PipelineMapping,
    model: &CoreModel,
    noc: &NocConfig,
) -> Result<PipelineReport> {
    noc.validate()?;
    let mut stage_cycles = Vec::with_capacity(mapping.stages.len());
    for stage in &mapping.stages {
        let mut cycles = 0u64;
        for &layer_idx in stage {
            let layer = &spec.layers[layer_idx];
            cycles += model.layer_cost(layer, layer.out_dims.0).cycles;
        }
        stage_cycles.push(cycles);
    }
    // Inter-stage traffic: the activation leaving the last layer of each
    // non-final, non-empty stage.
    let mut inter_stage_bytes = Vec::new();
    let active: Vec<usize> =
        (0..mapping.stages.len()).filter(|&s| !mapping.stages[s].is_empty()).collect();
    for window in active.windows(2) {
        let last_layer = *mapping.stages[window[0]].last().expect("active stage is non-empty");
        inter_stage_bytes.push(spec.layers[last_layer].output_bytes());
    }
    // One-hop transfer time per boundary: flit serialization over the
    // link, no contention (each link is private to its stage pair).
    let ser = noc.serialization_cycles();
    let transfer: u64 = inter_stage_bytes
        .iter()
        .map(|&b| {
            let flits = noc.flits_for_bytes(b);
            2 * noc.router_stages
                + noc.link_cycles
                + (ser - 1)
                + flits.saturating_sub(1) * ser / noc.physical_channels as u64
        })
        .sum();
    let bottleneck_cycles = stage_cycles.iter().copied().max().unwrap_or(0);
    let compute_latency: u64 = stage_cycles.iter().sum();
    let nonzero: Vec<u64> = stage_cycles.iter().copied().filter(|&c| c > 0).collect();
    let imbalance = if nonzero.is_empty() {
        0.0
    } else {
        let mean = nonzero.iter().sum::<u64>() as f64 / nonzero.len() as f64;
        bottleneck_cycles as f64 / mean
    };
    Ok(PipelineReport {
        stage_cycles,
        bottleneck_cycles,
        latency_cycles: compute_latency + transfer,
        inter_stage_bytes,
        imbalance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_accel::CoreConfig;
    use lts_nn::descriptor::{alexnet_spec, lenet_spec};

    fn model() -> CoreModel {
        CoreModel::new(CoreConfig::diannao())
    }

    #[test]
    fn stages_are_contiguous_and_cover_all_layers() {
        let spec = lenet_spec();
        let mapping = balance_layers(&spec, 4, &model());
        assert_eq!(mapping.stage_count(), 4);
        let flat: Vec<usize> = mapping.stages.iter().flatten().copied().collect();
        let expect: Vec<usize> = (0..spec.layers.len()).collect();
        assert_eq!(flat, expect, "stages must be contiguous, ordered, complete");
    }

    #[test]
    fn more_cores_than_layers_leaves_stages_empty_but_valid() {
        let spec = lts_nn::descriptor::mlp_spec(); // 6 layers
        let mapping = balance_layers(&spec, 16, &model());
        assert_eq!(mapping.stage_count(), 16);
        assert!(mapping.active_stages() <= spec.layers.len());
        let flat: Vec<usize> = mapping.stages.iter().flatten().copied().collect();
        assert_eq!(flat.len(), spec.layers.len());
    }

    #[test]
    fn pipelining_a_cnn_shows_the_papers_load_imbalance() {
        // The paper's §II-B objection: conv layers dwarf everything else,
        // so contiguous stages cannot balance.
        let spec = alexnet_spec();
        let mapping = balance_layers(&spec, 16, &model());
        let report =
            evaluate_pipeline(&spec, &mapping, &model(), &NocConfig::paper_16core()).unwrap();
        assert!(
            report.imbalance > 1.5,
            "imbalance {} should be visible for AlexNet on 16 stages",
            report.imbalance
        );
        // Throughput is gated by the bottleneck, not the mean.
        assert_eq!(report.bottleneck_cycles, *report.stage_cycles.iter().max().unwrap());
    }

    #[test]
    fn latency_includes_all_stages_and_transfers() {
        let spec = lenet_spec();
        let mapping = balance_layers(&spec, 4, &model());
        let report =
            evaluate_pipeline(&spec, &mapping, &model(), &NocConfig::paper_16core()).unwrap();
        let compute: u64 = report.stage_cycles.iter().sum();
        assert!(report.latency_cycles >= compute);
        assert_eq!(
            report.inter_stage_bytes.len(),
            report.stage_cycles.iter().filter(|&&c| c > 0).count() - 1
        );
    }

    #[test]
    fn single_stage_pipeline_equals_single_core() {
        let spec = lenet_spec();
        let mapping = balance_layers(&spec, 1, &model());
        let report =
            evaluate_pipeline(&spec, &mapping, &model(), &NocConfig::paper_16core()).unwrap();
        let single = model().single_core_cost(&spec.layers);
        assert_eq!(report.latency_cycles, single.cycles);
        assert_eq!(report.imbalance, 1.0);
        assert!(report.inter_stage_bytes.is_empty());
    }

    #[test]
    fn balancing_beats_naive_equal_layer_counts() {
        // Greedy cost balancing should never be worse than splitting the
        // chain into equal layer-count chunks.
        let spec = alexnet_spec();
        let cores = 8;
        let m = model();
        let balanced = balance_layers(&spec, cores, &m);
        let naive = {
            let per = spec.layers.len().div_ceil(cores);
            PipelineMapping {
                stages: (0..cores)
                    .map(|s| (s * per..((s + 1) * per).min(spec.layers.len())).collect::<Vec<_>>())
                    .collect(),
            }
        };
        let cfg = NocConfig::paper_16core();
        let rb = evaluate_pipeline(&spec, &balanced, &m, &cfg).unwrap();
        let rn = evaluate_pipeline(&spec, &naive, &m, &cfg).unwrap();
        assert!(rb.bottleneck_cycles <= rn.bottleneck_cycles);
    }
}
