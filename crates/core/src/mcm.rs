//! Multi-chip-module scale-out: chiplet-count throughput sweeps.
//!
//! Scaling a CMP past one reticle means joining chiplets with interposer
//! links ([`lts_noc::McmTopology`]). Two steady-state schedules compete
//! for throughput on an `N`-chiplet package:
//!
//! * **Pipelined** — [`lts_partition::McmPlan`] places contiguous layer
//!   stages on chiplets in serpentine order; a new image enters every
//!   initiation interval (the slowest stage's compute + communication).
//! * **Replicated** — every chiplet runs the whole network on its own
//!   image stream; package throughput is `N` images per single-chip
//!   latency.
//!
//! Because every stage runs at the same per-chiplet width as a replica
//! and the interval is at least the per-stage mean, replication is the
//! throughput-optimal schedule *in this latency model* (it ignores
//! weight-capacity limits, the usual reason to pipeline); the sweep
//! reports both so the crossover is visible when capacity modeling
//! lands. The replicated bound also makes package throughput strictly
//! monotone in the chiplet count.

use crate::simcache::SimUsage;
use crate::{CoreError, Result, SystemModel};
use lts_nn::NetworkSpec;
use lts_noc::{McmTopology, Topo};
use lts_partition::McmPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which schedule achieves one row's best throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleMode {
    /// Layer-pipelined across chiplets.
    Pipelined,
    /// Independent whole-network replicas, one per chiplet.
    Replicated,
}

/// One package size in a chiplet-count scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McmScalingRow {
    /// Chiplets on the package.
    pub chiplets: usize,
    /// Cores per chiplet.
    pub cores_per_chiplet: usize,
    /// Pipeline stages the layer partition produced (≤ `chiplets`).
    pub stages: usize,
    /// Single-image latency of the pipelined plan (cycles).
    pub latency_cycles: u64,
    /// Pipeline initiation interval: the slowest stage's compute + comm.
    pub interval_cycles: u64,
    /// Pipelined throughput, images per mega-cycle (`1e6 / interval`).
    pub pipelined_ipmc: f64,
    /// Replicated throughput, images per mega-cycle
    /// (`1e6 · chiplets / single-chip latency`).
    pub replicated_ipmc: f64,
    /// Best of the two schedules (the sweep's headline number).
    pub throughput_ipmc: f64,
    /// Which schedule won (`Pipelined` only on a strict win).
    pub mode: ScaleMode,
    /// Link traversals that stayed on-die, over the pipelined pass.
    pub intra_chip_traversals: u64,
    /// Interposer seam crossings, over the pipelined pass.
    pub inter_chip_traversals: u64,
    /// NoC energy of the pipelined pass, interposer premium included (pJ).
    pub noc_energy_pj: f64,
    /// Compute energy of the pipelined pass (pJ).
    pub compute_energy_pj: f64,
    /// Simulation-vs-cache accounting for the pipelined pass.
    pub sim: SimUsage,
}

/// The package topology `paper_mcm` would build, as an [`McmTopology`].
fn package_topology(
    chiplets: usize,
    cores_per_chiplet: usize,
) -> Result<(SystemModel, McmTopology)> {
    let model = SystemModel::paper_mcm(chiplets, cores_per_chiplet)?;
    match model.noc_config().topo() {
        Topo::Mcm(package) => Ok((model, package)),
        Topo::Mesh(_) => {
            Err(CoreError::BadConfig("paper_mcm produced a single-chip mesh topology".into()))
        }
    }
}

/// Sweeps `chiplet_counts` package sizes of the paper's hardware,
/// evaluating the stage-pipelined [`McmPlan`] on each and deriving
/// steady-state throughput for both schedules. `weights` follows
/// [`lts_partition::Plan::build`] (empty map = dense traffic).
///
/// `chiplets = 1` degenerates to the single-chip system: one stage, the
/// interval equals the latency, and both schedules tie at `1 / latency`.
///
/// # Errors
///
/// Configuration errors for zero counts; plan and NoC errors propagate.
pub fn scale_chiplets(
    spec: &NetworkSpec,
    weights: &HashMap<String, Vec<f32>>,
    cores_per_chiplet: usize,
    chiplet_counts: &[usize],
) -> Result<Vec<McmScalingRow>> {
    let _probe = lts_obs::span("core.mcm_scaling");
    // The replicated schedule's unit of work: single-chiplet latency.
    let (single_model, single_topo) = package_topology(1, cores_per_chiplet)?;
    let single_plan = McmPlan::build(spec, &single_topo, weights, 2)?;
    let single_latency = single_model.evaluate(&single_plan.plan)?.total_cycles.max(1);

    let mut rows = Vec::with_capacity(chiplet_counts.len());
    for &chiplets in chiplet_counts {
        let (model, package) = package_topology(chiplets, cores_per_chiplet)?;
        let mcm_plan = McmPlan::build(spec, &package, weights, 2)?;
        let report = model.evaluate(&mcm_plan.plan)?;
        let interval = mcm_plan
            .stages
            .iter()
            .map(|stage| {
                stage
                    .layers()
                    .map(|li| report.layers[li].compute_cycles + report.layers[li].comm_cycles)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(report.total_cycles)
            .max(1);
        let pipelined = 1e6 / interval as f64;
        let replicated = 1e6 * chiplets as f64 / single_latency as f64;
        let (throughput, mode) = if pipelined > replicated {
            (pipelined, ScaleMode::Pipelined)
        } else {
            (replicated, ScaleMode::Replicated)
        };
        if lts_obs::enabled() {
            lts_obs::counter_add("mcm.sweep_points", 1);
            lts_obs::counter_add("mcm.inter_chip_traversals", report.inter_chip_traversals);
        }
        rows.push(McmScalingRow {
            chiplets,
            cores_per_chiplet,
            stages: mcm_plan.stages.len(),
            latency_cycles: report.total_cycles,
            interval_cycles: interval,
            pipelined_ipmc: pipelined,
            replicated_ipmc: replicated,
            throughput_ipmc: throughput,
            mode,
            intra_chip_traversals: report.intra_chip_traversals,
            inter_chip_traversals: report.inter_chip_traversals,
            noc_energy_pj: report.noc_energy_pj,
            compute_energy_pj: report.compute_energy_pj,
            sim: report.sim,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::lenet_spec;
    use lts_partition::Plan;

    fn sweep(counts: &[usize]) -> Vec<McmScalingRow> {
        scale_chiplets(&lenet_spec(), &HashMap::new(), 16, counts).unwrap()
    }

    #[test]
    fn one_chiplet_row_is_the_single_chip_system() {
        let spec = lenet_spec();
        let rows = sweep(&[1]);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        let single =
            SystemModel::paper(16).unwrap().evaluate(&Plan::dense(&spec, 16, 2).unwrap()).unwrap();
        assert_eq!(row.latency_cycles, single.total_cycles);
        assert_eq!(row.stages, 1);
        assert_eq!(row.interval_cycles, row.latency_cycles);
        assert_eq!(row.inter_chip_traversals, 0);
        assert_eq!(row.pipelined_ipmc, row.replicated_ipmc);
        assert_eq!(row.mode, ScaleMode::Replicated, "ties go to replication");
    }

    #[test]
    fn throughput_scales_monotonically_with_chiplets() {
        let rows = sweep(&[1, 2, 4]);
        for pair in rows.windows(2) {
            assert!(
                pair[1].throughput_ipmc > pair[0].throughput_ipmc,
                "throughput must grow {} -> {} chiplets",
                pair[0].chiplets,
                pair[1].chiplets
            );
        }
        for row in &rows[1..] {
            assert!(row.inter_chip_traversals > 0, "{} chiplets must cross seams", row.chiplets);
            assert!(row.stages > 1 && row.stages <= row.chiplets);
        }
    }

    #[test]
    fn interval_bounds_hold() {
        for row in sweep(&[1, 2, 4]) {
            assert!(row.interval_cycles <= row.latency_cycles);
            // max ≥ mean over stages.
            assert!(row.interval_cycles as u128 * row.stages as u128 >= row.latency_cycles as u128);
            assert!(row.pipelined_ipmc <= row.replicated_ipmc + 1e-9);
        }
    }
}
