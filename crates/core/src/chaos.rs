//! Chaos soak: randomized mid-flight fault schedules hammered against
//! the online recovery path ([`crate::recovery::run_with_recovery`])
//! across all three parallelization strategies.
//!
//! Every trial draws a schedule of mid-inference core deaths from a
//! stateless hash stream (deterministic in `(config, strategy, trial)`,
//! independent of `LTS_THREADS`) and must end one of exactly three
//! ways:
//!
//! * [`Outcome::Recovered`] — the run recovered; the lost-output
//!   fraction is bounded in `[0, 1]` and the overhead ratios are finite;
//! * [`Outcome::Unreachable`] — the dead set disconnected the mesh, a
//!   *typed* error ([`lts_noc::NocError::Unreachable`]);
//! * [`Outcome::CycleLimit`] — the watchdog tripped
//!   ([`lts_noc::NocError::CycleLimitExceeded`]).
//!
//! Outcomes use the typed vocabulary shared with the serving simulator
//! ([`crate::outcome`]); [`outcome_histogram`] aggregates a soak's rows
//! into one [`OutcomeHistogram`].
//!
//! MCM topologies ([`ChaosConfig::chiplets`] entries above 1) soak the
//! package-level fault classes instead: mid-flight whole-chiplet deaths
//! through [`crate::recovery::run_with_recovery_chiplets`] and static
//! interposer-seam severings (which succeed as [`Outcome::Served`] when
//! the NoC reroutes around the dead seam).
//!
//! Panics and hangs are the failure modes the soak exists to rule out:
//! anything other than the typed outcomes above aborts the soak with
//! the offending error.

use crate::degradation::{workloads, Workload};
use crate::outcome::{Outcome, OutcomeHistogram};
use crate::recovery::{
    run_with_recovery, run_with_recovery_chiplets, ChipletFault, InferenceFault,
};
use crate::simcache::SimUsage;
use crate::system::SystemModel;
use crate::{CoreError, Result};
use lts_noc::{FaultModel, MonitorConfig, NocError, Topo};
use lts_partition::McmPlan;
use lts_tensor::par;
use serde::{Deserialize, Serialize};

/// Shape of the randomized soak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Cores on the (healthy) chip — per chiplet for MCM topologies.
    pub cores: usize,
    /// Trials per strategy.
    pub trials: usize,
    /// Most fault events injected per trial (at least one fires).
    pub max_faults: usize,
    /// Most cores killed per fault event (at least one dies).
    pub max_dead_per_fault: usize,
    /// Schedule seed.
    pub seed: u64,
    /// Package sizes to sample, in order. `1` soaks the single-chip
    /// mesh with mid-flight core deaths; an entry above 1 soaks a
    /// `paper_mcm` package of that many chiplets (`cores` each) with
    /// whole-chiplet and interposer-seam fault classes.
    pub chiplets: Vec<usize>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            trials: 8,
            max_faults: 2,
            max_dead_per_fault: 2,
            seed: 2019,
            chiplets: vec![1],
        }
    }
}

impl ChaosConfig {
    /// A trimmed soak for tests and `LTS_EFFORT=quick` runs.
    pub fn quick() -> Self {
        Self { trials: 2, max_faults: 1, ..Self::default() }
    }
}

/// One soak trial's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// `traditional`, `structure` or `sparsified`.
    pub strategy: String,
    /// Workload network name.
    pub network: String,
    /// Trial index within the strategy.
    pub trial: usize,
    /// The injected schedule (layer boundary + cores per event).
    pub faults: Vec<InferenceFault>,
    /// How the trial ended ([`Outcome::Recovered`],
    /// [`Outcome::Unreachable`] or [`Outcome::CycleLimit`]).
    pub outcome: Outcome,
    /// Cores dead by the end of the run.
    pub dead_cores: Vec<usize>,
    /// Composed-run latency in cycles (0 unless the trial recovered).
    pub total_cycles: u64,
    /// Latency relative to the fault-free run.
    pub overhead_vs_fault_free: f64,
    /// Latency relative to the oracle static replan (`None` when the
    /// oracle itself cannot run).
    pub overhead_vs_oracle: Option<f64>,
    /// Cycles spent between deaths and detections.
    pub detection_cycles: u64,
    /// Boundary-resync payload moved during recovery.
    pub redistribution_bytes: u64,
    /// Worst output loss across both loss mechanisms, always in
    /// `[0, 1]` — the soak's bounded-loss guarantee.
    pub lost_output_fraction: f64,
    /// Simulated-vs-cached NoC work behind the composed run (zeroed
    /// when the trial fails before evaluation).
    pub sim: SimUsage,
    /// Chiplets of the sampled package (`1` = single-chip mesh).
    pub chiplets: usize,
    /// `cores` (mid-flight core deaths), `chiplet` (mid-flight
    /// whole-chiplet death) or `seam` (static interposer-seam
    /// severing).
    pub fault_class: String,
    /// Chiplet ids behind a package fault: the killed chiplet for
    /// `chiplet` rows, the severed seam's two endpoint chiplets for
    /// `seam` rows, empty for `cores` rows.
    pub dead_chiplets: Vec<usize>,
}

/// One step of the splitmix64 stream the schedules are drawn from
/// (shared with the serving simulator's arrival processes).
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws one trial's fault schedule: sorted distinct layer boundaries,
/// distinct victim cores, and never enough deaths to leave fewer than
/// two survivors.
fn draw_schedule(
    config: &ChaosConfig,
    layers: usize,
    strategy_idx: usize,
    trial: usize,
) -> Vec<InferenceFault> {
    let mut state = config
        .seed
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add((strategy_idx as u64) << 32)
        .wrapping_add(trial as u64 + 1);
    let events = 1 + (splitmix(&mut state) as usize) % config.max_faults;
    // Boundaries 1..=layers-1: strictly mid-flight (some work done, some
    // remaining). Distinct, then sorted.
    let mut boundaries: Vec<usize> = Vec::new();
    let span = layers.saturating_sub(1).max(1);
    while boundaries.len() < events.min(span) {
        let b = 1 + (splitmix(&mut state) as usize) % span;
        if !boundaries.contains(&b) {
            boundaries.push(b);
        }
    }
    boundaries.sort_unstable();
    // Kill budget: always leave at least two survivors.
    let mut budget = config.cores.saturating_sub(2);
    let mut all_dead: Vec<usize> = Vec::new();
    let mut faults = Vec::new();
    for layer in boundaries {
        if budget == 0 {
            break;
        }
        let kills = (1 + (splitmix(&mut state) as usize) % config.max_dead_per_fault).min(budget);
        let mut dead = Vec::with_capacity(kills);
        while dead.len() < kills {
            let c = (splitmix(&mut state) as usize) % config.cores;
            if !dead.contains(&c) && !all_dead.contains(&c) {
                dead.push(c);
            }
        }
        dead.sort_unstable();
        budget -= dead.len();
        all_dead.extend_from_slice(&dead);
        faults.push(InferenceFault { layer, dead_cores: dead });
    }
    faults
}

/// Runs the full soak: `config.trials` randomized fault schedules per
/// strategy, through the online recovery path. Rows come back grouped
/// by strategy in trial order.
///
/// Trials where the schedule defeats the protocol do not abort the
/// soak — they are reported as [`Outcome::Unreachable`] or
/// [`Outcome::CycleLimit`] with zeroed measurements. Any *other*
/// error is a harness failure and propagates.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for an empty or degenerate soak shape;
/// unexpected plan/simulation errors.
pub fn chaos_soak(config: &ChaosConfig) -> Result<Vec<ChaosRow>> {
    if config.cores < 4 {
        return Err(CoreError::BadConfig("chaos soak needs at least 4 cores".into()));
    }
    if config.trials == 0 || config.max_faults == 0 || config.max_dead_per_fault == 0 {
        return Err(CoreError::BadConfig(
            "trials, max_faults and max_dead_per_fault must be positive".into(),
        ));
    }
    if config.chiplets.is_empty() || config.chiplets.contains(&0) {
        return Err(CoreError::BadConfig("chiplet counts must be present and positive".into()));
    }
    let workloads = workloads(config.cores)?;
    let mut rows = Vec::new();
    for &chiplets in &config.chiplets {
        // Strategies are independent; fan them out on the execution
        // engine (par_map preserves order, every trial is deterministic).
        let per_strategy = if chiplets == 1 {
            par::par_map(&workloads, |i, w| soak_workload(config, i, w))
        } else {
            par::par_map(&workloads, |i, w| soak_mcm_workload(config, chiplets, i, w))
        }
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        rows.extend(per_strategy.into_iter().flatten());
    }
    Ok(rows)
}

/// Aggregates a soak's rows into one outcome histogram (the shape the
/// serving simulator also reports, so the two harnesses compare
/// directly).
pub fn outcome_histogram(rows: &[ChaosRow]) -> OutcomeHistogram {
    let mut h = OutcomeHistogram::default();
    for r in rows {
        h.record(r.outcome);
    }
    h
}

fn soak_workload(config: &ChaosConfig, strategy_idx: usize, w: &Workload) -> Result<Vec<ChaosRow>> {
    let model = SystemModel::paper(config.cores)?;
    let monitor = MonitorConfig::default();
    let mut rows = Vec::with_capacity(config.trials);
    for trial in 0..config.trials {
        let faults = draw_schedule(config, w.spec.layers.len(), strategy_idx, trial);
        let mut row = ChaosRow {
            strategy: w.strategy.into(),
            network: w.network.into(),
            trial,
            faults: faults.clone(),
            outcome: Outcome::Recovered,
            dead_cores: Vec::new(),
            total_cycles: 0,
            overhead_vs_fault_free: 0.0,
            overhead_vs_oracle: None,
            detection_cycles: 0,
            redistribution_bytes: 0,
            lost_output_fraction: 0.0,
            sim: SimUsage::default(),
            chiplets: 1,
            fault_class: "cores".into(),
            dead_chiplets: Vec::new(),
        };
        match run_with_recovery(&model, &w.spec, &w.weights, &faults, &monitor) {
            Ok(report) => {
                row.dead_cores = report.dead_cores.clone();
                row.total_cycles = report.report.total_cycles;
                row.overhead_vs_fault_free = report.overhead_vs_fault_free();
                row.overhead_vs_oracle = report.overhead_vs_oracle();
                row.detection_cycles = report.detection_cycles();
                row.redistribution_bytes = report.redistribution_bytes();
                row.lost_output_fraction = report.lost_fraction();
                row.sim = report.report.sim;
            }
            Err(CoreError::Noc(NocError::Unreachable { .. })) => {
                row.outcome = Outcome::Unreachable;
            }
            Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => {
                row.outcome = Outcome::CycleLimit;
            }
            Err(e) => return Err(e),
        }
        rows.push(row);
    }
    Ok(rows)
}

/// MCM package soak: trials alternate between a mid-flight whole-chiplet
/// death (even trials, through the hierarchical detection + survivor
/// restaging path) and a static interposer-seam severing (odd trials,
/// evaluated as a ride-through on the healthy stage plan — the NoC
/// either reroutes around the dead seam or fails with a typed outcome).
fn soak_mcm_workload(
    config: &ChaosConfig,
    chiplets: usize,
    strategy_idx: usize,
    w: &Workload,
) -> Result<Vec<ChaosRow>> {
    let model = SystemModel::paper_mcm(chiplets, config.cores)?;
    let Topo::Mcm(topo) = model.noc_config().topo() else {
        return Err(CoreError::BadConfig("paper_mcm produced a single-chip mesh topology".into()));
    };
    let monitor = MonitorConfig::default();
    let order = topo.serpentine_chiplets();
    let healthy = McmPlan::build(&w.spec, &topo, &w.weights, 2)?;
    let fault_free = model.evaluate(&healthy.plan)?;
    let mut rows = Vec::with_capacity(config.trials);
    for trial in 0..config.trials {
        let mut state = config
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add((chiplets as u64) << 48)
            .wrapping_add((strategy_idx as u64) << 32)
            .wrapping_add(trial as u64 + 1);
        let span = w.spec.layers.len().saturating_sub(1).max(1);
        let layer = 1 + (splitmix(&mut state) as usize) % span;
        let mut row = ChaosRow {
            strategy: w.strategy.into(),
            network: w.network.into(),
            trial,
            faults: Vec::new(),
            outcome: Outcome::Recovered,
            dead_cores: Vec::new(),
            total_cycles: 0,
            overhead_vs_fault_free: 0.0,
            overhead_vs_oracle: None,
            detection_cycles: 0,
            redistribution_bytes: 0,
            lost_output_fraction: 0.0,
            sim: SimUsage::default(),
            chiplets,
            fault_class: String::new(),
            dead_chiplets: Vec::new(),
        };
        if trial % 2 == 0 {
            let victim = (splitmix(&mut state) as usize) % chiplets;
            row.fault_class = "chiplet".into();
            row.dead_chiplets = vec![victim];
            row.faults = vec![InferenceFault { layer, dead_cores: topo.chiplet_nodes(victim) }];
            let faults = [ChipletFault { layer, dead_chiplets: vec![victim] }];
            match run_with_recovery_chiplets(&model, &w.spec, &w.weights, &faults, &monitor) {
                Ok(report) => {
                    row.dead_cores = report.dead_cores.clone();
                    row.total_cycles = report.report.total_cycles;
                    row.overhead_vs_fault_free = report.overhead_vs_fault_free();
                    row.overhead_vs_oracle = report.overhead_vs_oracle();
                    row.detection_cycles = report.detection_cycles();
                    row.redistribution_bytes = report.redistribution_bytes();
                    row.lost_output_fraction = report.lost_fraction();
                    row.sim = report.report.sim;
                }
                Err(CoreError::Noc(NocError::Unreachable { .. })) => {
                    row.outcome = Outcome::Unreachable;
                }
                Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => {
                    row.outcome = Outcome::CycleLimit;
                }
                Err(e) => return Err(e),
            }
        } else {
            // Consecutive serpentine chiplets are grid-adjacent, so the
            // pair always shares a physical interposer seam.
            let i = (splitmix(&mut state) as usize) % (order.len() - 1);
            let (a, b) = (order[i], order[i + 1]);
            row.fault_class = "seam".into();
            row.dead_chiplets = vec![a, b];
            let severed = FaultModel::none().kill_seam(&topo, a, b);
            match model.clone().with_fault_model(severed).evaluate(&healthy.plan) {
                Ok(report) => {
                    row.outcome = Outcome::Served;
                    row.total_cycles = report.total_cycles;
                    row.overhead_vs_fault_free =
                        report.total_cycles as f64 / fault_free.total_cycles.max(1) as f64;
                    row.sim = report.sim;
                }
                Err(CoreError::Noc(NocError::Unreachable { .. })) => {
                    row.outcome = Outcome::Unreachable;
                }
                Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => {
                    row.outcome = Outcome::CycleLimit;
                }
                Err(e) => return Err(e),
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChaosConfig {
        ChaosConfig { seed: 7, ..ChaosConfig::quick() }
    }

    #[test]
    fn soak_covers_every_strategy_with_bounded_loss() {
        let config = quick();
        let rows = chaos_soak(&config).unwrap();
        assert_eq!(rows.len(), 3 * config.trials);
        for strategy in ["traditional", "structure", "sparsified"] {
            assert_eq!(rows.iter().filter(|r| r.strategy == strategy).count(), config.trials);
        }
        for r in &rows {
            assert!(!r.faults.is_empty(), "every trial injects at least one fault");
            assert!(
                matches!(
                    r.outcome,
                    Outcome::Recovered | Outcome::Unreachable | Outcome::CycleLimit
                ),
                "soak trials never shed or miss deadlines: {}",
                r.outcome
            );
            assert!(
                (0.0..=1.0).contains(&r.lost_output_fraction),
                "lost fraction {} out of bounds",
                r.lost_output_fraction
            );
            if r.outcome == Outcome::Recovered {
                assert!(r.total_cycles > 0);
                assert!(
                    r.overhead_vs_fault_free >= 1.0,
                    "recovery cannot be faster than fault-free ({})",
                    r.overhead_vs_fault_free
                );
                assert!(r.overhead_vs_fault_free.is_finite());
                assert!(r.detection_cycles > 0, "deaths must be detected, not assumed");
                assert!(!r.dead_cores.is_empty());
            }
        }
    }

    #[test]
    fn soak_is_deterministic() {
        let config = quick();
        let a = chaos_soak(&config).unwrap();
        let b = chaos_soak(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_histogram_accounts_for_every_trial() {
        let rows = chaos_soak(&quick()).unwrap();
        let h = outcome_histogram(&rows);
        assert_eq!(h.total() as usize, rows.len());
        assert_eq!(h.served, 0, "a soak trial that completes did so by recovering");
        assert_eq!(h.shed + h.deadline_miss, 0);
        assert_eq!(
            h.recovered as usize,
            rows.iter().filter(|r| r.outcome == Outcome::Recovered).count()
        );
    }

    #[test]
    fn schedules_are_valid_and_leave_survivors() {
        let config = ChaosConfig { trials: 16, max_faults: 4, max_dead_per_fault: 5, ..quick() };
        for s in 0..3 {
            for t in 0..config.trials {
                let faults = draw_schedule(&config, 11, s, t);
                assert!(!faults.is_empty());
                let mut dead = Vec::new();
                for pair in faults.windows(2) {
                    assert!(pair[0].layer < pair[1].layer, "boundaries sorted and distinct");
                }
                for f in &faults {
                    assert!(f.layer >= 1 && f.layer <= 10, "strictly mid-flight");
                    for &d in &f.dead_cores {
                        assert!(d < config.cores);
                        assert!(!dead.contains(&d), "no double kills");
                        dead.push(d);
                    }
                }
                assert!(dead.len() <= config.cores - 2, "at least two survivors");
            }
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(chaos_soak(&ChaosConfig { cores: 2, ..quick() }).is_err());
        assert!(chaos_soak(&ChaosConfig { trials: 0, ..quick() }).is_err());
        assert!(chaos_soak(&ChaosConfig { max_faults: 0, ..quick() }).is_err());
        assert!(chaos_soak(&ChaosConfig { max_dead_per_fault: 0, ..quick() }).is_err());
        assert!(chaos_soak(&ChaosConfig { chiplets: Vec::new(), ..quick() }).is_err());
        assert!(chaos_soak(&ChaosConfig { chiplets: vec![1, 0], ..quick() }).is_err());
    }

    #[test]
    fn mcm_soak_samples_chiplet_and_seam_fault_classes() {
        let config = ChaosConfig { cores: 8, chiplets: vec![2], ..quick() };
        let rows = chaos_soak(&config).unwrap();
        assert_eq!(rows.len(), 3 * config.trials);
        for r in &rows {
            assert_eq!(r.chiplets, 2);
            match r.fault_class.as_str() {
                "chiplet" => {
                    assert_eq!(r.trial % 2, 0, "even trials kill a chiplet");
                    assert_eq!(r.dead_chiplets.len(), 1);
                    assert_eq!(r.faults.len(), 1);
                    assert_eq!(
                        r.faults[0].dead_cores.len(),
                        config.cores,
                        "a chiplet death is all of its cores"
                    );
                    assert!(matches!(
                        r.outcome,
                        Outcome::Recovered | Outcome::Unreachable | Outcome::CycleLimit
                    ));
                    if r.outcome == Outcome::Recovered {
                        assert!(r.detection_cycles > 0, "chiplet deaths must be detected");
                        assert!(r.overhead_vs_fault_free >= 1.0);
                    }
                }
                "seam" => {
                    assert_eq!(r.trial % 2, 1, "odd trials sever a seam");
                    assert_eq!(r.dead_chiplets.len(), 2, "a seam joins two chiplets");
                    assert!(r.faults.is_empty(), "seam severing kills no cores");
                    assert!(matches!(
                        r.outcome,
                        Outcome::Served | Outcome::Unreachable | Outcome::CycleLimit
                    ));
                }
                other => panic!("unexpected fault class `{other}`"),
            }
            assert!((0.0..=1.0).contains(&r.lost_output_fraction));
        }
        assert!(rows.iter().any(|r| r.fault_class == "chiplet"));
        assert!(rows.iter().any(|r| r.fault_class == "seam"));
        // Histograms split cleanly per topology config.
        let h = outcome_histogram(&rows);
        assert_eq!(h.total() as usize, rows.len());
        // Determinism across simcache temperature.
        crate::simcache::reset();
        let again = chaos_soak(&config).unwrap();
        assert_eq!(rows, again);
    }

    #[test]
    fn mixed_topology_soak_orders_rows_by_package_size() {
        let config = ChaosConfig { cores: 8, chiplets: vec![1, 2], trials: 2, ..quick() };
        let rows = chaos_soak(&config).unwrap();
        assert_eq!(rows.len(), 2 * 3 * config.trials);
        assert!(rows[..6].iter().all(|r| r.chiplets == 1 && r.fault_class == "cores"));
        assert!(rows[6..].iter().all(|r| r.chiplets == 2 && r.fault_class != "cores"));
        for r in &rows[..6] {
            assert!(r.dead_chiplets.is_empty(), "mesh rows carry no chiplet ids");
        }
    }
}
