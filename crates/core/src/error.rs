//! Unified error type for the core crate.

use lts_nn::NnError;
use lts_noc::NocError;
use lts_partition::PlanError;
use std::error::Error;
use std::fmt;

/// Errors from pipelines, system modelling, or experiments.
#[derive(Debug)]
pub enum CoreError {
    /// Neural-network construction or training failed.
    Nn(NnError),
    /// NoC simulation failed.
    Noc(NocError),
    /// Plan construction failed.
    Plan(PlanError),
    /// An invalid experiment configuration.
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Noc(e) => write!(f, "NoC error: {e}"),
            CoreError::Plan(e) => write!(f, "plan error: {e}"),
            CoreError::BadConfig(msg) => write!(f, "bad experiment configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Noc(e) => Some(e),
            CoreError::Plan(e) => Some(e),
            CoreError::BadConfig(_) => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<NocError> for CoreError {
    fn from(e: NocError) -> Self {
        CoreError::Noc(e)
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = NnError::BadConfig("x".into()).into();
        assert!(e.to_string().contains("network error"));
        let e: CoreError = NocError::BadConfig("y".into()).into();
        assert!(e.to_string().contains("NoC error"));
        let e: CoreError = PlanError::BadConfig("z".into()).into();
        assert!(e.to_string().contains("plan error"));
        assert!(CoreError::BadConfig("w".into()).to_string().contains("w"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<CoreError>();
    }
}
