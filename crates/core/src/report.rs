//! ASCII rendering of experiment results in the paper's table layouts.

use crate::degradation::{outcome, FaultSweepRow};
use crate::experiment::{GroupMatrix, ScaleRow, SparsifiedRow, StructureRow};
use lts_partition::comm::{format_bytes, VolumeRow};

/// Renders a generic table: header row + data rows, columns padded.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let sep = {
        let mut line = String::from("|");
        for w in &widths {
            line.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        line
    };
    let mut out = String::new();
    out.push_str(&render_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push('\n');
        out.push_str(&render_row(row));
    }
    out
}

/// Table I layout.
pub fn render_table1(rows: &[VolumeRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let layers: Vec<String> = r
                .layers
                .iter()
                .map(|(name, bytes)| format!("{name}={}", format_bytes(*bytes)))
                .collect();
            vec![r.network.clone(), layers.join("  "), format_bytes(r.total())]
        })
        .collect();
    render_table(&["Network", "Per-layer data moving size", "Total"], &data)
}

/// Table III layout.
pub fn render_table3(rows: &[StructureRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}-{}-{}", r.kernels[0], r.kernels[1], r.kernels[2]),
                r.groups.to_string(),
                format!("{:.3}", r.accuracy),
                format!("{:.1}x", r.speedup),
                if r.comm_speedup.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:.1}x", r.comm_speedup)
                },
                format!("{:.0}%", r.comm_energy_reduction * 100.0),
            ]
        })
        .collect();
    render_table(
        &["ConvNet", "Kernels", "n", "Accu.", "Speedup", "Comm speedup", "Comm energy red."],
        &data,
    )
}

/// Table IV / Table VI layout.
pub fn render_table4(rows: &[SparsifiedRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.cores.to_string(),
                r.scheme.clone(),
                format!("{:.2}%", r.accuracy * 100.0),
                format!("{:.0}%", r.traffic_rate * 100.0),
                format!("{:.2}x", r.speedup),
                format!("{:.0}%", r.energy_reduction * 100.0),
            ]
        })
        .collect();
    render_table(
        &["Network", "Cores", "Type", "Accu.", "NoC traffic rate", "System speedup", "Energy red."],
        &data,
    )
}

/// Table V / Fig. 8 layout.
pub fn render_table5(rows: &[ScaleRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                r.cores.to_string(),
                format!("{:.3}", r.accuracy),
                format!("{:.1}x", r.speedup),
                if r.comm_speedup.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:.1}x", r.comm_speedup)
                },
                format!("{:.0}%", r.comm_energy_reduction * 100.0),
            ]
        })
        .collect();
    render_table(&["Cores", "n", "Accu.", "Speedup", "Comm speedup", "Comm energy red."], &data)
}

/// Degradation-sweep layout: one row per (strategy, fault rate, dead
/// set) cell. Cells that did not complete show their outcome in place
/// of measurements.
pub fn render_fault_sweep(rows: &[FaultSweepRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let dead = if r.dead_cores.is_empty() {
                "-".to_string()
            } else {
                r.dead_cores.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
            };
            let (latency, energy) = if r.outcome == outcome::OK {
                (format!("{:.3}x", r.latency_vs_healthy), format!("{:.3}x", r.energy_vs_healthy))
            } else {
                ("-".to_string(), "-".to_string())
            };
            vec![
                r.strategy.clone(),
                format!("{:.0e}", r.fault_rate),
                dead,
                r.survivors.to_string(),
                r.outcome.clone(),
                latency,
                energy,
                r.retransmitted_packets.to_string(),
                format!("{:.1}%", r.lost_output_fraction * 100.0),
            ]
        })
        .collect();
    render_table(
        &[
            "Strategy",
            "Drop rate",
            "Dead cores",
            "Surv.",
            "Outcome",
            "Latency",
            "Energy",
            "Retx",
            "Lost out.",
        ],
        &data,
    )
}

/// Fig. 6(b)-style rendering: `#` for surviving groups, `.` for pruned,
/// with row/column core indices.
pub fn render_group_matrix(m: &GroupMatrix) -> String {
    let mut out = format!(
        "{} / {}: surviving weight groups ({} cores, {:.0}% pruned)\n",
        m.network,
        m.layer,
        m.cores,
        m.zero_fraction() * 100.0
    );
    out.push_str("     consumer core ->\n");
    out.push_str("     ");
    for c in 0..m.cores {
        out.push_str(&format!("{c:>3}"));
    }
    out.push('\n');
    for p in 0..m.cores {
        out.push_str(&format!("p{p:>3} "));
        for c in 0..m.cores {
            let n = m.norms[p * m.cores + c];
            let glyph = if n == 0.0 {
                "  ."
            } else if p == c {
                "  D"
            } else {
                "  #"
            };
            out.push_str(glyph);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_pads_columns() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["xxx".into(), "y".into()], vec!["z".into(), "wwwww".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("bbbb"));
    }

    #[test]
    fn group_matrix_rendering_marks_diagonal_and_pruned() {
        let m = GroupMatrix {
            network: "MLP".into(),
            layer: "ip2".into(),
            cores: 2,
            norms: vec![1.0, 0.0, 0.5, 2.0],
        };
        let s = render_group_matrix(&m);
        assert!(s.contains('D'));
        assert!(s.contains('.'));
        assert!(s.contains('#'));
        assert!(s.contains("25% pruned"));
    }

    #[test]
    fn table1_rendering_formats_layer_volumes() {
        let rows = vec![VolumeRow {
            network: "LeNet".into(),
            layers: vec![("conv2".into(), 86_400), ("ip1".into(), 24_000)],
        }];
        let s = render_table1(&rows);
        assert!(s.contains("LeNet"));
        assert!(s.contains("conv2=84K"));
        assert!(s.contains("108K")); // total
    }

    #[test]
    fn table3_and_table5_render_infinite_comm_speedup() {
        let row = StructureRow {
            name: "Parallel#2".into(),
            kernels: [64, 128, 256],
            groups: 16,
            accuracy: 0.94,
            speedup: 3.4,
            comm_speedup: f64::INFINITY,
            comm_energy_reduction: 0.9,
            total_energy_reduction: 0.5,
        };
        let s = render_table3(&[row]);
        assert!(s.contains("inf"));
        assert!(s.contains("3.4x"));
        let srow = ScaleRow {
            cores: 32,
            accuracy: 0.72,
            speedup: 6.9,
            comm_energy_reduction: 0.56,
            comm_speedup: f64::INFINITY,
        };
        let s5 = render_table5(&[srow]);
        assert!(s5.contains("6.9x"));
        assert!(s5.contains("inf"));
    }

    #[test]
    fn table4_rendering_includes_percentages() {
        let rows = vec![SparsifiedRow {
            network: "MLP".into(),
            cores: 16,
            scheme: "SS_Mask".into(),
            accuracy: 0.9836,
            traffic_rate: 0.11,
            speedup: 1.59,
            energy_reduction: 0.81,
        }];
        let s = render_table4(&rows);
        assert!(s.contains("98.36%"));
        assert!(s.contains("11%"));
        assert!(s.contains("1.59x"));
        assert!(s.contains("81%"));
    }
}
