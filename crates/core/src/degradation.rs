//! Fail-operational degradation experiments: fault rate × core failures
//! swept over the three parallelization strategies.
//!
//! Each cell of the sweep kills a set of cores (their routers die with
//! them), injects a transient flit-drop rate on the surviving links,
//! re-plans the workload over the survivors
//! ([`lts_partition::replan`]) and re-runs the end-to-end system model
//! on the faulty mesh. The three strategies degrade differently:
//!
//! * **traditional** — dense ConvNet; re-sharding preserves accuracy,
//!   latency/traffic shift with the survivor count;
//! * **structure** — grouped ConvNet; a dead core takes its channel
//!   groups' output chain with it ([`FaultSweepRow::lost_output_fraction`]
//!   is the accuracy-degradation proxy);
//! * **sparsified** — dense ConvNet with synthetic SS_Mask-style weights
//!   (producer→consumer groups more than one hop apart are zero), the
//!   communication pattern the paper's mask regularizer converges to.
//!
//! Every cell is deterministic in `(config, seed)` and independent of
//! the execution engine's worker count: the NoC simulator is
//! single-threaded and fault schedules are stateless hash draws.

use crate::simcache::SimUsage;
use crate::system::{SystemModel, SystemReport};
use crate::{CoreError, Result};
use lts_nn::descriptor::{convnet_spec, NetworkSpec, SpecBuilder};
use lts_noc::{FaultModel, NocConfig, NocError, Topology};
use lts_partition::{replan, Plan};
use lts_tensor::par;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The fault-rate × dead-core grid to sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepConfig {
    /// Cores on the (healthy) chip.
    pub cores: usize,
    /// Transient flit-drop probabilities to inject on surviving links.
    pub fault_rates: Vec<f64>,
    /// Sets of physical cores to kill (router and compute die together).
    pub dead_core_sets: Vec<Vec<usize>>,
    /// Fault-schedule seed.
    pub seed: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            fault_rates: vec![0.0, 1e-4, 1e-3],
            dead_core_sets: vec![vec![], vec![5], vec![5, 6, 10]],
            seed: 2019,
        }
    }
}

impl FaultSweepConfig {
    /// A trimmed grid for tests and `LTS_EFFORT=quick` runs.
    pub fn quick() -> Self {
        Self {
            fault_rates: vec![0.0, 1e-3],
            dead_core_sets: vec![vec![], vec![5]],
            ..Self::default()
        }
    }

    /// Cells per strategy.
    pub fn cells(&self) -> usize {
        self.fault_rates.len() * self.dead_core_sets.len()
    }
}

/// How one sweep cell ended.
pub mod outcome {
    /// The degraded run completed and delivered every message.
    pub const OK: &str = "ok";
    /// The fault model cut the mesh: some survivor pair has no route.
    pub const UNREACHABLE: &str = "unreachable";
    /// The retransmission protocol could not converge before the cycle
    /// watchdog (pathological fault rates).
    pub const CYCLE_LIMIT: &str = "cycle-limit";
}

/// One cell of the degradation sweep.
///
/// The `*_vs_healthy` ratios compare against the same strategy on the
/// fault-free chip (`> 1` = slower / more energy). On a run that did not
/// complete (`outcome != "ok"`) every measured field is zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// `traditional`, `structure` or `sparsified`.
    pub strategy: String,
    /// Workload network name.
    pub network: String,
    /// Injected flit-drop probability.
    pub fault_rate: f64,
    /// Killed physical cores (sorted, deduplicated).
    pub dead_cores: Vec<usize>,
    /// Surviving cores the plan was rebuilt over.
    pub survivors: usize,
    /// One of the [`outcome`] strings.
    pub outcome: String,
    /// Single-pass latency in cycles.
    pub total_cycles: u64,
    /// Communication share of the latency, in cycles.
    pub comm_cycles: u64,
    /// Bytes crossing the NoC.
    pub traffic_bytes: u64,
    /// NoC energy (pJ), including retransmitted flits.
    pub noc_energy_pj: f64,
    /// Packets re-sent after a timeout.
    pub retransmitted_packets: u64,
    /// Packets rejected at the destination NIC (poisoned payloads).
    pub rejected_packets: u64,
    /// Latency relative to the fault-free run of the same strategy.
    pub latency_vs_healthy: f64,
    /// Total (compute + NoC) energy relative to the fault-free run.
    pub energy_vs_healthy: f64,
    /// Worst per-layer fraction of output channels lost to core death —
    /// the accuracy-degradation proxy (nonzero only for grouped plans).
    pub lost_output_fraction: f64,
    /// Simulated-vs-cached NoC work behind this cell (zeroed when the
    /// cell fails before evaluation).
    pub sim: SimUsage,
}

/// One strategy's workload: a spec plus (possibly sparse) weights.
/// Shared with the chaos-soak harness ([`crate::chaos`]), which stresses
/// the same three strategies with mid-flight faults, and with external
/// fault-injection benches that sweep the same ladder.
pub struct Workload {
    /// Strategy label: `traditional`, `structure` or `sparsified`.
    pub strategy: &'static str,
    /// Workload network name.
    pub network: &'static str,
    /// The network to plan and evaluate.
    pub spec: NetworkSpec,
    /// Per-layer weights; empty for dense strategies.
    pub weights: HashMap<String, Vec<f32>>,
}

/// The CIFAR ConvNet with its deeper convolutions grouped `groups` ways
/// (the §IV-B structure-level layout at chip scale). Shared with the
/// serving simulator's strategy ladder ([`crate::serve`]).
pub(crate) fn grouped_convnet_spec(groups: usize) -> NetworkSpec {
    SpecBuilder::new("ConvNet-G", (3, 32, 32))
        .conv("conv1", 32, 5, 1, 2, 1)
        .pool("pool1", 3, 2)
        .relu()
        .conv("conv2", 32, 5, 1, 2, groups)
        .relu()
        .pool("pool2", 3, 2)
        .conv("conv3", 64, 5, 1, 2, groups)
        .relu()
        .pool("pool3", 3, 2)
        .flatten()
        .linear("ip1", 64)
        .linear("ip2", 10)
        .build()
}

/// Synthetic SS_Mask-style weights for `spec` on `cores` cores: every
/// producer→consumer weight group whose cores sit more than one hop
/// apart on the mesh is zeroed, nearby groups stay dense. This is the
/// hop-local communication pattern the paper's mask regularizer learns,
/// reproduced without training. Shared with the serving simulator's
/// strategy ladder ([`crate::serve`]).
pub(crate) fn hop_local_weights(
    spec: &NetworkSpec,
    cores: usize,
) -> Result<HashMap<String, Vec<f32>>> {
    let cfg = NocConfig::paper_cores(cores)?;
    let mesh = cfg.topo();
    let plan = Plan::dense(spec, cores, 2)?;
    let mut weights = HashMap::new();
    for lp in &plan.layers {
        let Some(layout) = &lp.layout else { continue };
        if lp.traffic.is_empty() {
            // First layer reads the replicated input: leave it dense.
            continue;
        }
        let mut w = vec![1.0f32; layout.weight_len()];
        for p in 0..cores {
            for c in 0..cores {
                if p != c && mesh.distance(p, c) > 1 {
                    layout.visit_group(p, c, |idx| w[idx] = 0.0);
                }
            }
        }
        weights.insert(lp.spec.name.clone(), w);
    }
    Ok(weights)
}

/// The three-strategy workload ladder on a `cores`-core chip:
/// traditional (dense), structure-level (grouped ConvNet, grouping
/// degree picked to divide the conv channel counts), and the
/// communication-aware sparsified layout (synthetic hop-local SS_Mask
/// weights).
///
/// # Errors
///
/// Propagates plan construction failures from the hop-local weight
/// synthesis (e.g. an unsupported core count).
pub fn workloads(cores: usize) -> Result<Vec<Workload>> {
    let dense = convnet_spec();
    // Grouping degree: the chip size when it divides the conv channel
    // counts, otherwise the largest divisor that does.
    let groups = (1..=cores).rev().find(|g| 32 % g == 0 && 64 % g == 0).unwrap_or(1);
    let sparse_weights = hop_local_weights(&dense, cores)?;
    Ok(vec![
        Workload {
            strategy: "traditional",
            network: "ConvNet",
            spec: dense.clone(),
            weights: HashMap::new(),
        },
        Workload {
            strategy: "structure",
            network: "ConvNet-G",
            spec: grouped_convnet_spec(groups),
            weights: HashMap::new(),
        },
        Workload {
            strategy: "sparsified",
            network: "ConvNet",
            spec: dense,
            weights: sparse_weights,
        },
    ])
}

/// Runs the full degradation sweep: every strategy × fault rate ×
/// dead-core set. Rows come back grouped by strategy, then in the grid
/// order of `config` (fault rate outer, dead set inner).
///
/// Cells where the fault configuration defeats the protocol do not
/// abort the sweep: they are reported with [`outcome::UNREACHABLE`] or
/// [`outcome::CYCLE_LIMIT`] and zeroed measurements.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for an empty/invalid grid; plan or
/// simulation errors other than the two fail-operational outcomes.
pub fn fault_sweep(config: &FaultSweepConfig) -> Result<Vec<FaultSweepRow>> {
    if config.cores == 0 {
        return Err(CoreError::BadConfig("cores must be positive".into()));
    }
    if config.fault_rates.is_empty() || config.dead_core_sets.is_empty() {
        return Err(CoreError::BadConfig("empty sweep grid".into()));
    }
    let workloads = workloads(config.cores)?;
    // Strategies are independent; fan them out on the execution engine
    // (par_map preserves order, and every cell is deterministic).
    let per_strategy = par::par_map(&workloads, |_, w| sweep_workload(config, w))
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
    Ok(per_strategy.into_iter().flatten().collect())
}

fn sweep_workload(config: &FaultSweepConfig, w: &Workload) -> Result<Vec<FaultSweepRow>> {
    let healthy_plan = Plan::build(&w.spec, config.cores, &w.weights, 2)?;
    let healthy = SystemModel::paper(config.cores)?.evaluate(&healthy_plan)?;
    let mut rows = Vec::with_capacity(config.cells());
    for &rate in &config.fault_rates {
        for dead in &config.dead_core_sets {
            rows.push(sweep_cell(config, w, &healthy, rate, dead)?);
        }
    }
    Ok(rows)
}

fn sweep_cell(
    config: &FaultSweepConfig,
    w: &Workload,
    healthy: &SystemReport,
    rate: f64,
    dead: &[usize],
) -> Result<FaultSweepRow> {
    let degraded = replan(&w.spec, config.cores, dead, &w.weights, 2)?;
    let mut fault = FaultModel::none().with_seed(config.seed).drop_rate(rate);
    for &d in &degraded.dead_cores {
        fault = fault.kill_router(d);
    }
    let model = SystemModel::paper(config.cores)?.with_fault_model(fault);
    let mut row = FaultSweepRow {
        strategy: w.strategy.into(),
        network: w.network.into(),
        fault_rate: rate,
        dead_cores: degraded.dead_cores.clone(),
        survivors: degraded.survivors(),
        outcome: outcome::OK.into(),
        total_cycles: 0,
        comm_cycles: 0,
        traffic_bytes: 0,
        noc_energy_pj: 0.0,
        retransmitted_packets: 0,
        rejected_packets: 0,
        latency_vs_healthy: 0.0,
        energy_vs_healthy: 0.0,
        lost_output_fraction: degraded.lost_output_fraction(),
        sim: SimUsage::default(),
    };
    match model.evaluate_degraded(&degraded) {
        Ok(report) => {
            row.total_cycles = report.total_cycles;
            row.comm_cycles = report.comm_cycles;
            row.traffic_bytes = report.traffic_bytes;
            row.noc_energy_pj = report.noc_energy_pj;
            row.retransmitted_packets = report.faults.packets_retransmitted;
            row.rejected_packets = report.faults.packets_rejected;
            row.latency_vs_healthy = if healthy.total_cycles == 0 {
                1.0
            } else {
                report.total_cycles as f64 / healthy.total_cycles as f64
            };
            let base_energy = healthy.total_energy_pj();
            row.energy_vs_healthy =
                if base_energy == 0.0 { 1.0 } else { report.total_energy_pj() / base_energy };
            row.sim = report.sim;
        }
        Err(CoreError::Noc(NocError::Unreachable { .. })) => {
            row.outcome = outcome::UNREACHABLE.into();
        }
        Err(CoreError::Noc(NocError::CycleLimitExceeded { .. })) => {
            row.outcome = outcome::CYCLE_LIMIT.into();
        }
        Err(e) => return Err(e),
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FaultSweepConfig {
        FaultSweepConfig { seed: 7, ..FaultSweepConfig::quick() }
    }

    #[test]
    fn sweep_covers_every_strategy_and_cell() {
        let config = quick();
        let rows = fault_sweep(&config).unwrap();
        assert_eq!(rows.len(), 3 * config.cells());
        for strategy in ["traditional", "structure", "sparsified"] {
            assert_eq!(rows.iter().filter(|r| r.strategy == strategy).count(), config.cells());
        }
        for r in &rows {
            assert!(
                [outcome::OK, outcome::UNREACHABLE, outcome::CYCLE_LIMIT]
                    .contains(&r.outcome.as_str()),
                "unknown outcome {}",
                r.outcome
            );
        }
    }

    #[test]
    fn zero_fault_rows_match_the_healthy_baseline_exactly() {
        let rows = fault_sweep(&quick()).unwrap();
        for w in workloads(16).unwrap() {
            let healthy = SystemModel::paper(16)
                .unwrap()
                .evaluate(&Plan::build(&w.spec, 16, &w.weights, 2).unwrap())
                .unwrap();
            let row = rows
                .iter()
                .find(|r| {
                    r.strategy == w.strategy && r.fault_rate == 0.0 && r.dead_cores.is_empty()
                })
                .unwrap();
            assert_eq!(row.outcome, outcome::OK);
            assert_eq!(row.total_cycles, healthy.total_cycles, "strategy {}", w.strategy);
            assert_eq!(row.traffic_bytes, healthy.traffic_bytes);
            assert_eq!(row.latency_vs_healthy, 1.0);
            assert_eq!(row.energy_vs_healthy, 1.0);
            assert_eq!(row.retransmitted_packets, 0);
            assert_eq!(row.rejected_packets, 0);
        }
    }

    #[test]
    fn transient_faults_fire_and_cost_latency() {
        let rows = fault_sweep(&quick()).unwrap();
        let row = rows
            .iter()
            .find(|r| {
                r.strategy == "traditional" && r.fault_rate == 1e-3 && r.dead_cores.is_empty()
            })
            .unwrap();
        assert_eq!(row.outcome, outcome::OK);
        assert!(row.retransmitted_packets > 0, "1e-3 must fire on the ConvNet trace");
        assert!(row.latency_vs_healthy > 1.0);
    }

    #[test]
    fn only_grouped_plans_lose_accuracy_to_core_death() {
        let rows = fault_sweep(&quick()).unwrap();
        for r in &rows {
            if r.dead_cores.is_empty() {
                assert_eq!(r.lost_output_fraction, 0.0);
                continue;
            }
            match r.strategy.as_str() {
                "structure" => assert!(
                    r.lost_output_fraction > 0.0,
                    "dead core must take its groups' outputs with it"
                ),
                _ => assert_eq!(r.lost_output_fraction, 0.0, "re-sharding preserves accuracy"),
            }
            assert_eq!(r.survivors, 15);
        }
    }

    #[test]
    fn sparsified_workload_moves_less_traffic_than_traditional() {
        let rows = fault_sweep(&quick()).unwrap();
        let find = |strategy: &str| {
            rows.iter()
                .find(|r| r.strategy == strategy && r.fault_rate == 0.0 && r.dead_cores.is_empty())
                .unwrap()
        };
        let traditional = find("traditional");
        let sparsified = find("sparsified");
        let structure = find("structure");
        assert!(sparsified.traffic_bytes < traditional.traffic_bytes);
        assert!(structure.traffic_bytes < traditional.traffic_bytes);
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let mut config = quick();
        config.cores = 0;
        assert!(fault_sweep(&config).is_err());
        let mut config = quick();
        config.fault_rates.clear();
        assert!(fault_sweep(&config).is_err());
        let mut config = quick();
        config.dead_core_sets = vec![vec![99]];
        assert!(fault_sweep(&config).is_err(), "out-of-range dead core must propagate");
    }
}
