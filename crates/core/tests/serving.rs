//! Serving determinism: the full [`lts_core::ServingReport`] — batch
//! boundaries included — must be bit-identical across `LTS_THREADS`
//! settings and across simcache cold/warm runs, for any stream shape.
//!
//! All sweeps share one `#[test]`-generating proptest block so the
//! process-wide [`lts_tensor::par::install`] calls never race.

use lts_core::serve::service_capacity_rpmc;
use lts_core::{run_serving, simcache, ArrivalConfig, ArrivalProcess, ServingConfig, StreamFault};
use lts_tensor::par::{self, ExecConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn serving_reports_are_bit_identical_across_threads_and_cache_state(
        seed in 0u64..1_000,
        rate_pct in 30u32..260, // percent of saturated capacity
        max_batch in 1usize..5,
        fault_sel in 0u8..2,
    ) {
        let mut config = ServingConfig { max_batch, ..ServingConfig::default() };
        let capacity = service_capacity_rpmc(&config).expect("capacity");
        config.arrivals = ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_rpmc: capacity * rate_pct as f64 / 100.0 },
            horizon_cycles: 4_000_000,
            seed,
        };
        if fault_sel == 1 {
            config.faults = vec![StreamFault { at_cycle: 1_300_000, dead_cores: vec![5] }];
        }

        // Cold cache, serial execution.
        simcache::reset();
        par::install(ExecConfig::new(1));
        let serial_cold = run_serving(&config).expect("serial run");

        // Warm cache, 4 workers.
        par::install(ExecConfig::new(4));
        let threaded_warm = run_serving(&config).expect("threaded warm run");

        // Cold cache again, still 4 workers.
        simcache::reset();
        let threaded_cold = run_serving(&config).expect("threaded cold run");

        par::install(ExecConfig::from_env());

        prop_assert_eq!(&serial_cold, &threaded_warm,
            "thread count or cache temperature leaked into the report");
        prop_assert_eq!(&serial_cold, &threaded_cold,
            "cache temperature leaked into the report");
        // Batch boundaries are the schedule: spell them out so a future
        // report-shape change cannot silently weaken this check.
        let a: Vec<(u64, u64, usize)> = serial_cold
            .batches
            .iter()
            .map(|b| (b.dispatched_at, b.completed_at, b.size))
            .collect();
        let b: Vec<(u64, u64, usize)> = threaded_warm
            .batches
            .iter()
            .map(|b| (b.dispatched_at, b.completed_at, b.size))
            .collect();
        prop_assert_eq!(a, b, "batch boundaries must not move");
        prop_assert_eq!(
            serial_cold.outcomes.total() as usize,
            serial_cold.offered,
            "every offered request must reach exactly one outcome"
        );
    }
}
