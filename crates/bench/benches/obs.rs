//! Observability-layer evidence: the disabled-probe overhead contract
//! and a fully instrumented table3-quick pass.
//!
//! Two claims are measured and asserted, then recorded in
//! `BENCH_obs.json`:
//!
//! 1. **Disabled probes are free.** With the global switch off, a span
//!    costs a few nanoseconds — under 1% of even the smallest hot-path
//!    workload it guards (the 256×256 GEMM). The bench times a million
//!    disabled spans, times the instrumented GEMM, and fails if the
//!    ratio breaches 1%.
//! 2. **The cycle timelines are exact.** An instrumented
//!    [`SystemModel::evaluate`] produces a `core.evaluate#N` track whose
//!    per-layer comm/compute intervals sum to the report's
//!    `total_cycles` *exactly* — same integers, not approximately.
//!
//! The instrumented table3-quick pass then exports the per-layer
//! wall+cycle breakdown three ways into `LTS_BENCH_DIR`:
//! `OBS_table3_quick.json` (snapshot), `OBS_table3_quick.folded`
//! (flamegraph folded stacks), `OBS_table3_quick.trace.json` (Chrome
//! `chrome://tracing` / Perfetto). Probe-path statistics are attached to
//! the report so `LTS_BENCH_BASELINE` gates per-probe medians.
//!
//! Run with `cargo bench --bench obs`. `LTS_BENCH_ITERS` caps measured
//! iterations (the CI smoke uses 2).

use lts_bench::timing::{iters_from_env, time, BenchReport};
use lts_core::experiment::{table3_rows, EffortPreset};
use lts_core::simcache;
use lts_core::system::SystemModel;
use lts_nn::descriptor::lenet_spec;
use lts_partition::Plan;
use lts_tensor::matmul;
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, Shape};

/// The disabled-overhead contract: spans off must cost <1% of the
/// matmul they instrument.
const OVERHEAD_LIMIT_PCT: f64 = 1.0;

fn main() {
    let mut report = BenchReport::new("obs", "quick");
    let host = report.host_cpus;
    println!("=== observability layer: overhead + instrumented e2e ({host} CPUs) ===\n");

    // -- 1. Disabled-probe overhead ------------------------------------
    lts_obs::set_enabled(false);
    lts_obs::reset();
    par::install(ExecConfig::new(1));

    const SPAN_CALLS: usize = 1_000_000;
    let spans = time("span_disabled_x1e6", 1, iters_from_env(10).min(10), || {
        for _ in 0..SPAN_CALLS {
            let _s = lts_obs::span("obs.disabled_probe");
        }
    });
    let span_ns = spans.mean_ms * 1e6 / SPAN_CALLS as f64;
    report.push(spans);

    let mut rng = init::rng(1);
    let a = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let b = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = vec![0.0f32; 256 * 256];
    let gemm = time("matmul_256x256_t1_probes_off", 3, iters_from_env(20), || {
        matmul::matmul_into(av, bv, &mut c, 256, 256, 256);
    });
    // One disabled span guards each instrumented matmul call.
    let overhead_pct = 100.0 * span_ns / (gemm.mean_ms * 1e6);
    report.push(gemm);
    report.note(format!(
        "disabled span: {span_ns:.1} ns/call -> {overhead_pct:.4}% of one 256x256 GEMM \
         (contract: <{OVERHEAD_LIMIT_PCT}%)"
    ));
    assert!(
        overhead_pct < OVERHEAD_LIMIT_PCT,
        "disabled-probe overhead {overhead_pct:.3}% breaches the {OVERHEAD_LIMIT_PCT}% contract"
    );
    assert!(lts_obs::snapshot().probes.is_empty(), "disabled probes must record nothing");

    // -- 2. Exact cycle accounting -------------------------------------
    lts_obs::set_enabled(true);
    lts_obs::reset();
    let model = SystemModel::paper(16).expect("model");
    let plan = Plan::dense(&lenet_spec(), 16, 2).expect("plan");
    let sys = model.evaluate(&plan).expect("evaluate");
    let snap = lts_obs::snapshot();
    let track = snap
        .cycles
        .iter()
        .find(|t| t.track.starts_with("core.evaluate#"))
        .expect("evaluate must emit a cycle track");
    assert_eq!(
        track.total_cycles, sys.total_cycles,
        "cycle track must sum to SystemReport::total_cycles exactly"
    );
    let span_sum: u64 = track.spans.iter().map(|s| s.cycles).sum();
    assert_eq!(span_sum, sys.total_cycles, "no interval may be dropped at this scale");
    assert!(
        track.spans.iter().any(|s| s.phase == "comm")
            && track.spans.iter().any(|s| s.phase == "compute"),
        "per-layer comm and compute phases must both appear"
    );
    report.note(format!(
        "evaluate(LeNet,16c): core.evaluate track total = SystemReport.total_cycles = {} \
         (exact, {} per-layer intervals)",
        sys.total_cycles,
        track.spans.len()
    ));

    // -- 3. Instrumented table3-quick, exported three ways -------------
    lts_obs::reset();
    par::install(ExecConfig::new(host));
    simcache::reset();
    report.push(time("table3_quick_e2e_probes_on", 0, 1, || {
        table3_rows(&EffortPreset::quick()).expect("table3 quick");
    }));

    let snap = lts_obs::snapshot();
    let per_layer: Vec<_> = snap.probes.iter().filter(|p| p.path.contains("nn.forward;")).collect();
    assert!(
        !per_layer.is_empty(),
        "instrumented table3-quick must yield per-layer probe rows under nn.forward"
    );
    assert!(
        snap.cycles.iter().any(|t| t.track.starts_with("core.evaluate#")),
        "table3-quick must emit per-variant cycle timelines"
    );
    assert!(
        snap.cycles.iter().any(|t| t.track == "noc.stepper" && t.total_cycles > 0),
        "the NoC stepper must report its cycle split"
    );
    report.note(format!(
        "table3_quick probes: {} paths ({} per-layer under nn.forward), {} cycle tracks, \
         {} counters",
        snap.probes.len(),
        per_layer.len(),
        snap.cycles.len(),
        snap.counters.len()
    ));

    let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let dir = std::path::Path::new(&dir);
    for (name, contents) in [
        ("OBS_table3_quick.json", snap.to_json()),
        ("OBS_table3_quick.folded", snap.folded()),
        ("OBS_table3_quick.trace.json", snap.chrome_trace()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write obs export");
        println!("wrote {}", path.display());
    }

    summarize_probes(&snap.probes);
    report.attach_probes();
    lts_obs::set_enabled(false);
    report.write_checked().expect("write benchmark report");
}

/// Prints the top probe paths by total wall time.
fn summarize_probes(probes: &[lts_obs::ProbeRow]) {
    let mut by_sum: Vec<_> = probes.iter().collect();
    by_sum.sort_by(|a, b| b.sum_ms.total_cmp(&a.sum_ms));
    println!("\ntop probe paths by total wall time:");
    for p in by_sum.iter().take(8) {
        println!(
            "  {:<56} {:>7} calls  {:>10.3} ms total  p50 {:>8.3} ms  p95 {:>8.3} ms",
            p.path, p.count, p.sum_ms, p.p50_ms, p.p95_ms
        );
    }
}
