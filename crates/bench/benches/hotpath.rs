//! Before/after wall-clock evidence for the hot-path overhaul.
//!
//! Times the retained pre-overhaul implementations (the `reference` GEMM
//! kernels and the full-scan NoC stepper) against the optimized ones on
//! identical inputs in a single process, so `BENCH_hotpath.json` records a
//! true same-host before/after. The `*_before` / `*_after` record pairs
//! share a workload; the report notes summarize the speedups. Also runs a
//! table3-quick end-to-end pass (training + simulation + sim cache) and
//! reports the sim cache's hit/miss counters.
//!
//! Run with `cargo bench --bench hotpath`. `LTS_BENCH_ITERS` caps measured
//! iterations (the CI smoke uses 2).

use lts_bench::timing::{iters_from_env, time, BenchReport};
use lts_core::experiment::{table3_rows, EffortPreset};
use lts_core::simcache;
use lts_noc::traffic::{Message, TrafficTrace};
use lts_noc::{NocConfig, Simulator};
use lts_tensor::matmul::{self, reference};
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, Shape};

/// The sparse timed trace: a few messages spread far apart in time, so
/// almost every cycle is idle (the active-set + fast-forward showcase).
fn sparse_trace(nodes: usize) -> TrafficTrace {
    let mut t = TrafficTrace::new();
    for i in 0..400usize {
        let src = i % nodes;
        let mut dst = (i * 7 + 3) % nodes;
        if dst == src {
            dst = (dst + 1) % nodes;
        }
        t.push(Message::new(src, dst, 64 + (i as u64 % 40) * 13, (i as u64) * 3_000));
    }
    t
}

fn main() {
    let mut report = BenchReport::new("hotpath", "n/a");
    let host = report.host_cpus;
    println!("=== hot-path before/after benchmarks ({host} CPUs available) ===\n");
    par::install(ExecConfig::new(1));

    // GEMM: pre-overhaul panel kernels vs register-blocked microkernels,
    // single-threaded on identical 256x256 operands (bit-identical C).
    let mut rng = init::rng(1);
    let a = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let b = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = vec![0.0f32; 256 * 256];
    let iters = iters_from_env(20);
    report.push(time("matmul_256x256_t1_before", 3, iters, || {
        reference::matmul_into_ref(av, bv, &mut c, 256, 256, 256);
    }));
    report.push(time("matmul_256x256_t1_after", 3, iters, || {
        matmul::matmul_into(av, bv, &mut c, 256, 256, 256);
    }));
    report.push(time("matmul_at_b_256_t1_before", 3, iters, || {
        reference::matmul_at_b_into_ref(av, bv, &mut c, 256, 256, 256);
    }));
    report.push(time("matmul_at_b_256_t1_after", 3, iters, || {
        matmul::matmul_at_b_into(av, bv, &mut c, 256, 256, 256);
    }));
    report.push(time("matmul_a_bt_256_t1_before", 3, iters, || {
        reference::matmul_a_bt_into_ref(av, bv, &mut c, 256, 256, 256);
    }));
    report.push(time("matmul_a_bt_256_t1_after", 3, iters, || {
        matmul::matmul_a_bt_into(av, bv, &mut c, 256, 256, 256);
    }));
    note_speedup(&mut report, "matmul_256x256_t1");
    note_speedup(&mut report, "matmul_at_b_256_t1");
    note_speedup(&mut report, "matmul_a_bt_256_t1");

    // Disabled-probe overhead: the optimized kernels above already run
    // with an `lts-obs` span inside (off by default); price one million
    // disabled spans against the GEMM they guard. Contract: <1%.
    const SPAN_CALLS: usize = 1_000_000;
    let spans = time("obs_span_disabled_x1e6", 1, iters.min(10), || {
        for _ in 0..SPAN_CALLS {
            let _s = lts_obs::span("hotpath.disabled_probe");
        }
    });
    let span_ns = spans.mean_ms * 1e6 / SPAN_CALLS as f64;
    let gemm_ns = report
        .records
        .iter()
        .find(|r| r.name == "matmul_256x256_t1_after")
        .map(|r| r.mean_ms * 1e6)
        .unwrap_or(f64::NAN);
    let overhead_pct = 100.0 * span_ns / gemm_ns;
    report.push(spans);
    report.note(format!(
        "disabled obs span: {span_ns:.1} ns/call = {overhead_pct:.4}% of one 256x256 GEMM \
         (contract: <1%)"
    ));
    assert!(overhead_pct < 1.0, "disabled-probe overhead {overhead_pct:.3}% breaches 1%");
    report.note(
        "GEMM context: the pinned-SSE2 safe-Rust build caps f32 MACs at 4/cycle and the \
         pre-overhaul A*B / At*B kernels already ran near 3 MACs/cycle, so their headroom is \
         ~1.3x (the blocked kernels sit at ~95% of the ALU ceiling; DESIGN.md sec. 12); A*Bt \
         was scalar-dot-bound and roughly halves in time, and it dominates the backward pass",
    );

    // NoC: full-scan reference stepper vs active-set + fast-forward on an
    // identical sparse timed trace (bit-identical SimReports).
    let trace = sparse_trace(16);
    let sim_iters = iters_from_env(10);
    report.push(time("noc_sim_sparse_16c_before", 2, sim_iters, || {
        let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
        sim.run_reference(&trace.messages).expect("reference noc run");
    }));
    report.push(time("noc_sim_sparse_16c_after", 2, sim_iters, || {
        let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
        sim.run(&trace.messages).expect("noc run");
    }));
    note_speedup(&mut report, "noc_sim_sparse_16c");
    {
        let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
        let rep = sim.run(&trace.messages).expect("noc run");
        report.note(format!(
            "noc_sim_sparse_16c: {} cycles stepped, {} fast-forwarded ({:.1}% idle skipped)",
            rep.cycles_simulated,
            rep.cycles_fast_forwarded,
            100.0 * rep.cycles_fast_forwarded as f64
                / (rep.cycles_simulated + rep.cycles_fast_forwarded).max(1) as f64,
        ));
    }

    // End-to-end: one table3-quick pass through training + simulation with
    // the sim cache live. Single iteration — the workload is minutes-scale.
    par::install(ExecConfig::new(host));
    simcache::reset();
    report.push(time("table3_quick_e2e_after", 0, 1, || {
        table3_rows(&EffortPreset::quick()).expect("table3 quick");
    }));
    let stats = simcache::stats();
    report.note(format!(
        "sim cache over table3_quick_e2e_after: {} hits / {} misses",
        stats.hits, stats.misses
    ));
    report.note(
        "table3_quick_e2e before: 17.26 s wall (commit 6a6d06a, same host, LTS_EFFORT=quick)"
            .to_string(),
    );

    report.write_checked().expect("write benchmark report");
}

/// Appends a `name: before/after speedup` note from the two records.
fn note_speedup(report: &mut BenchReport, name: &str) {
    let mean = |suffix: &str| {
        report
            .records
            .iter()
            .find(|r| r.name == format!("{name}_{suffix}"))
            .map(|r| r.mean_ms)
            .unwrap_or(f64::NAN)
    };
    let (before, after) = (mean("before"), mean("after"));
    report.note(format!("{name}: {before:.3} ms -> {after:.3} ms ({:.2}x)", before / after));
}
