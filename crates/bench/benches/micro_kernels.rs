//! Criterion micro-benchmarks of the hot kernels: GEMM, im2col, grouped
//! convolution forward/backward, the flit-level NoC simulator, and the
//! group-norm scan that the lasso/pruning path performs every step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lts_nn::conv::Conv2d;
use lts_nn::grouping::GroupLayout;
use lts_nn::layer::Layer;
use lts_noc::traffic::all_to_all;
use lts_noc::{NocConfig, Simulator};
use lts_tensor::im2col::{im2col, ConvGeometry};
use lts_tensor::matmul::matmul;
use lts_tensor::{init, Shape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = init::rng(1);
    let a = init::uniform(Shape::d2(128, 128), 1.0, &mut rng);
    let b = init::uniform(Shape::d2(128, 128), 1.0, &mut rng);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)).expect("benchmark matmul"))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = init::rng(2);
    let img = init::uniform(Shape::d3(20, 12, 12), 1.0, &mut rng);
    let geom = ConvGeometry { in_c: 20, in_h: 12, in_w: 12, kh: 5, kw: 5, stride: 1, pad: 0 };
    c.bench_function("im2col_lenet_conv2", |bench| {
        bench.iter(|| im2col(black_box(&img), &geom).expect("benchmark im2col"))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = init::rng(3);
    let mut conv = Conv2d::new("c", (20, 12, 12), 50, 5, 1, 0, 1, &mut rng).expect("conv");
    let x = init::uniform(Shape::d4(8, 20, 12, 12), 1.0, &mut rng);
    c.bench_function("conv2d_forward_lenet_conv2_b8", |bench| {
        bench.iter(|| conv.forward(black_box(&x)).expect("benchmark forward"))
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = init::rng(4);
    let mut conv = Conv2d::new("c", (20, 12, 12), 50, 5, 1, 0, 1, &mut rng).expect("conv");
    let x = init::uniform(Shape::d4(4, 20, 12, 12), 1.0, &mut rng);
    let y = conv.forward(&x).expect("forward");
    let grad = Tensor::ones(y.shape().clone());
    c.bench_function("conv2d_backward_lenet_conv2_b4", |bench| {
        bench.iter(|| {
            conv.forward(black_box(&x)).expect("forward");
            conv.backward(black_box(&grad)).expect("backward")
        })
    });
}

fn bench_noc_burst(c: &mut Criterion) {
    let trace = all_to_all(16, 1024);
    c.bench_function("noc_sim_all_to_all_16c_1kb", |bench| {
        bench.iter(|| {
            let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
            sim.run(black_box(&trace.messages)).expect("benchmark noc run")
        })
    });
}

fn bench_group_norms(c: &mut Criterion) {
    let layout = GroupLayout::new(512, 304, 1, 16);
    let mut rng = init::rng(5);
    let w = init::uniform(Shape::d1(512 * 304), 0.1, &mut rng);
    c.bench_function("group_norm_matrix_mlp_ip2", |bench| {
        bench.iter(|| layout.norm_matrix(black_box(w.as_slice())))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_matmul, bench_im2col, bench_conv_forward, bench_conv_backward,
        bench_noc_burst, bench_group_norms
);
criterion_main!(kernels);
