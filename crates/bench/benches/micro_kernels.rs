//! Wall-clock micro-benchmarks of the hot kernels: GEMM, im2col, grouped
//! convolution forward/backward, the flit-level NoC simulator, and the
//! group-norm scan that the lasso/pruning path performs every step.
//!
//! Run with `cargo bench --bench micro_kernels`. The GEMM workload is
//! swept over execution-engine worker counts to record the parallel
//! kernel's scaling on this host; results land in
//! `BENCH_micro_kernels.json`.

use lts_bench::timing::{iters_from_env, time, BenchReport};
use lts_nn::conv::Conv2d;
use lts_nn::grouping::GroupLayout;
use lts_nn::layer::Layer;
use lts_noc::traffic::all_to_all;
use lts_noc::{NocConfig, Simulator};
use lts_tensor::im2col::{im2col, ConvGeometry};
use lts_tensor::matmul::matmul;
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, Shape, Tensor};

fn main() {
    let mut report = BenchReport::new("micro_kernels", "n/a");
    let host = report.host_cpus;
    println!("=== micro-kernel wall-clock benchmarks ({host} CPUs available) ===\n");

    // GEMM thread sweep: the parallel blocked kernel at 1..N workers on
    // identical inputs (bit-identical outputs; only wall-clock changes).
    let mut rng = init::rng(1);
    let a = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let b = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
    let mut sweep = vec![1usize];
    for t in [2, 4, host] {
        if t > 1 && !sweep.contains(&t) {
            sweep.push(t);
        }
    }
    sweep.sort_unstable();
    for &threads in &sweep {
        par::install(ExecConfig::new(threads));
        report.push(time(&format!("matmul_256x256_t{threads}"), 3, iters_from_env(20), || {
            matmul(&a, &b).expect("benchmark matmul");
        }));
    }
    if host < 4 {
        report.note(format!(
            "host exposes only {host} CPU(s); thread-sweep speedups are not expected to \
             materialize here"
        ));
    }
    par::install(ExecConfig::new(host));

    let mut rng = init::rng(2);
    let img = init::uniform(Shape::d3(20, 12, 12), 1.0, &mut rng);
    let geom = ConvGeometry { in_c: 20, in_h: 12, in_w: 12, kh: 5, kw: 5, stride: 1, pad: 0 };
    report.push(time("im2col_lenet_conv2", 3, iters_from_env(50), || {
        im2col(&img, &geom).expect("benchmark im2col");
    }));

    let mut rng = init::rng(3);
    let mut conv = Conv2d::new("c", (20, 12, 12), 50, 5, 1, 0, 1, &mut rng).expect("conv");
    let x = init::uniform(Shape::d4(8, 20, 12, 12), 1.0, &mut rng);
    report.push(time("conv2d_forward_lenet_conv2_b8", 3, iters_from_env(20), || {
        conv.forward(&x).expect("benchmark forward");
    }));

    let mut rng = init::rng(4);
    let mut conv = Conv2d::new("c", (20, 12, 12), 50, 5, 1, 0, 1, &mut rng).expect("conv");
    let x = init::uniform(Shape::d4(4, 20, 12, 12), 1.0, &mut rng);
    let y = conv.forward(&x).expect("forward");
    let grad = Tensor::ones(y.shape().clone());
    report.push(time("conv2d_backward_lenet_conv2_b4", 3, iters_from_env(20), || {
        conv.forward(&x).expect("forward");
        conv.backward(&grad).expect("backward");
    }));

    let trace = all_to_all(16, 1024);
    report.push(time("noc_sim_all_to_all_16c_1kb", 2, iters_from_env(10), || {
        let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
        sim.run(&trace.messages).expect("benchmark noc run");
    }));

    let layout = GroupLayout::new(512, 304, 1, 16);
    let mut rng = init::rng(5);
    let w = init::uniform(Shape::d1(512 * 304), 0.1, &mut rng);
    report.push(time("group_norm_matrix_mlp_ip2", 3, iters_from_env(50), || {
        layout.norm_matrix(w.as_slice());
    }));

    report.write_checked().expect("write benchmark report");
}
