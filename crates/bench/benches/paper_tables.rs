//! Wall-clock benches over the analytic/simulation experiment paths, one
//! per table or figure of the paper.
//!
//! The headline measurement is the Table III runner (`table3_rows`) under
//! an execution-engine thread sweep: the whole train+plan+simulate path
//! runs once at 1 worker and once at 4 workers on identical inputs
//! (results are bit-identical; only wall-clock changes). Training-based
//! tables are timed at the `LTS_EFFORT` preset (default `paper`; use
//! `quick` for a fast run). Results land in `BENCH_paper_tables.json`.

use lts_bench::timing::{time, BenchReport};
use lts_core::experiment::{
    motivation_comm_share, sparsified_experiment, table1_rows, table3_rows, EffortPreset,
    SparsifyParams,
};
use lts_core::pipeline::plan_for;
use lts_core::SystemModel;
use lts_datasets::presets::synth_mnist;
use lts_nn::models;
use lts_nn::prune::PruneCriterion;
use lts_partition::Plan;
use lts_tensor::par::{self, ExecConfig};

/// A micro effort preset so training-path benches finish quickly.
fn micro_preset() -> EffortPreset {
    EffortPreset {
        train_samples: 64,
        test_samples: 32,
        epochs: 1,
        fine_tune_epochs: 0,
        batch_size: 32,
        seed: 2019,
    }
}

fn main() {
    let preset = lts_bench::effort_from_env();
    let effort = if preset == EffortPreset::quick() { "quick" } else { "paper" };
    lts_bench::banner("paper-table benchmark timings", &preset);
    let mut report = BenchReport::new("paper_tables", effort);
    let host = report.host_cpus;

    // Table III end-to-end (train + plan + simulate) thread sweep. The
    // pipeline entries re-install their configured `ExecConfig` (which
    // resolves from the environment), so the sweep drives `LTS_THREADS`
    // rather than a one-shot `par::install`.
    let mut sweep_means = Vec::new();
    for threads in [1usize, 4] {
        std::env::set_var(par::THREADS_ENV, threads.to_string());
        par::install(ExecConfig::new(threads));
        let record = time(&format!("table3_rows_{effort}_t{threads}"), 0, 1, || {
            table3_rows(&preset).expect("table 3");
        });
        sweep_means.push((threads, record.mean_ms));
        report.push(record);
    }
    std::env::remove_var(par::THREADS_ENV);
    if let [(t1, base), rest @ ..] = &sweep_means[..] {
        for (tn, ms) in rest {
            report.note(format!(
                "table3 speedup t{t1}->t{tn}: {:.2}x on a {host}-CPU host",
                base / ms.max(f64::MIN_POSITIVE)
            ));
        }
    }
    if host < 4 {
        report.note(format!(
            "host exposes only {host} CPU(s); the >=4-core speedup target cannot \
             materialize on this machine — numbers recorded as measured"
        ));
    }
    par::install(ExecConfig::new(host));

    report.push(time("table1_data_volume_analytic", 2, 10, || {
        table1_rows(16).expect("table 1");
    }));

    report.push(time("motivation_alexnet_comm_share", 2, 10, || {
        motivation_comm_share().expect("motivation");
    }));

    let spec = lts_nn::descriptor::lenet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let model = SystemModel::paper(16).expect("model");
    report.push(time("system_eval_lenet_dense_16c", 2, 10, || {
        model.evaluate(&plan).expect("evaluate");
    }));

    // The Table III system-evaluation path (training excluded): grouped
    // vs dense variant plans through the full accel+NoC model.
    let dense = models::convnet_variant([64, 128, 256], 1, 0).expect("net").spec();
    let grouped = models::convnet_variant([64, 128, 256], 16, 0).expect("net").spec();
    report.push(time("table3_system_eval_dense_vs_grouped", 2, 10, || {
        let pd = Plan::dense(&dense, 16, 2).expect("plan");
        let pg = Plan::dense(&grouped, 16, 2).expect("plan");
        let rd = model.evaluate(&pd).expect("evaluate");
        let rg = model.evaluate(&pg).expect("evaluate");
        rg.speedup_vs(&rd);
    }));

    // The Table IV/VI code path at micro scale: baseline + SS + SS_Mask
    // over a 1-point λ grid on the MLP.
    let micro = micro_preset();
    let data = synth_mnist(micro.train_samples, micro.test_samples, micro.seed);
    let params = SparsifyParams {
        lambda_grid: vec![2.0],
        prune: PruneCriterion::RmsBelowRelative(0.35),
        accuracy_tolerance: 0.05,
    };
    let config = micro.pipeline_config();
    report.push(time("table4_pipeline_micro_mlp", 0, 3, || {
        sparsified_experiment(
            "MLP",
            |s| models::mlp(28 * 28, 10, s),
            &data,
            16,
            &config,
            micro.seed,
            params.clone(),
        )
        .expect("micro table 4");
    }));

    // The Table V/Fig. 8 system path across core counts (training
    // excluded).
    let nets: Vec<_> = [4usize, 8, 16, 32]
        .iter()
        .map(|&n| (n, models::convnet_variant([64, 160, 320], n, 0).expect("net").spec()))
        .collect();
    lts_core::simcache::reset();
    report.push(time("table5_system_eval_4_to_32_cores", 2, 10, || {
        for (cores, spec) in &nets {
            let model = SystemModel::paper(*cores).expect("model");
            let plan = Plan::dense(spec, *cores, 2).expect("plan");
            model.evaluate(&plan).expect("evaluate");
        }
    }));
    let cache = lts_core::simcache::stats();
    report.note(format!(
        "sim cache over table5 sweep: {} hits / {} misses ({} entries)",
        cache.hits, cache.misses, cache.entries
    ));

    // Group-matrix extraction from a network (training excluded).
    let net = models::mlp(28 * 28, 10, 0).expect("net");
    let spec = net.spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let layout = plan.layer("ip2").and_then(|l| l.layout.clone()).expect("layout");
    let weights = net.layer_weight("ip2").expect("weights").value.as_slice().to_vec();
    report.push(time("fig6_group_matrix_extraction", 2, 20, || {
        layout.norm_matrix(&weights);
    }));

    // Sparsity-aware traffic generation (the Plan::build hot path).
    report.push(time("sparse_plan_build_mlp_16c", 2, 10, || {
        plan_for(&net, 16, true, true).expect("plan");
    }));

    report.write_checked().expect("write benchmark report");
}
