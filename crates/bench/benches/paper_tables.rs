//! Criterion benches over the analytic/simulation experiment paths, one
//! per table or figure of the paper.
//!
//! Training-based tables (III–VI) are too slow to iterate inside
//! Criterion; their timed proxies here run micro presets exercising the
//! identical code path, while the dedicated binaries
//! (`table3_structure_level`, `table4_sparsified`, …) regenerate the
//! full tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lts_core::experiment::{
    motivation_comm_share, sparsified_experiment, table1_rows, EffortPreset, SparsifyParams,
};
use lts_core::pipeline::plan_for;
use lts_core::SystemModel;
use lts_datasets::presets::synth_mnist;
use lts_nn::models;
use lts_nn::prune::PruneCriterion;
use lts_partition::Plan;

/// A micro effort preset so training-path benches finish quickly.
fn micro_preset() -> EffortPreset {
    EffortPreset {
        train_samples: 64,
        test_samples: 32,
        epochs: 1,
        fine_tune_epochs: 0,
        batch_size: 32,
        seed: 2019,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_data_volume_analytic", |b| {
        b.iter(|| table1_rows(black_box(16)).expect("table 1"))
    });
}

fn bench_motivation(c: &mut Criterion) {
    c.bench_function("motivation_alexnet_comm_share", |b| {
        b.iter(|| motivation_comm_share().expect("motivation"))
    });
}

fn bench_system_evaluation(c: &mut Criterion) {
    let spec = lts_nn::descriptor::lenet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let model = SystemModel::paper(16).expect("model");
    c.bench_function("system_eval_lenet_dense_16c", |b| {
        b.iter(|| model.evaluate(black_box(&plan)).expect("evaluate"))
    });
}

fn bench_structure_level_plan(c: &mut Criterion) {
    // The Table III system-evaluation path (training excluded): grouped
    // vs dense variant plans through the full accel+NoC model.
    let dense = models::convnet_variant([64, 128, 256], 1, 0).expect("net").spec();
    let grouped = models::convnet_variant([64, 128, 256], 16, 0).expect("net").spec();
    let model = SystemModel::paper(16).expect("model");
    c.bench_function("table3_system_eval_dense_vs_grouped", |b| {
        b.iter(|| {
            let pd = Plan::dense(black_box(&dense), 16, 2).expect("plan");
            let pg = Plan::dense(black_box(&grouped), 16, 2).expect("plan");
            let rd = model.evaluate(&pd).expect("evaluate");
            let rg = model.evaluate(&pg).expect("evaluate");
            rg.speedup_vs(&rd)
        })
    });
}

fn bench_sparsified_pipeline_micro(c: &mut Criterion) {
    // The Table IV/VI code path at micro scale: baseline + SS + SS_Mask
    // over a 2-point λ grid on the MLP.
    let preset = micro_preset();
    let data = synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let params = SparsifyParams {
        lambda_grid: vec![2.0],
        prune: PruneCriterion::RmsBelowRelative(0.35),
        accuracy_tolerance: 0.05,
    };
    let config = preset.pipeline_config();
    c.bench_function("table4_pipeline_micro_mlp", |b| {
        b.iter(|| {
            sparsified_experiment(
                "MLP",
                |s| models::mlp(28 * 28, 10, s),
                black_box(&data),
                16,
                &config,
                preset.seed,
                params.clone(),
            )
            .expect("micro table 4")
        })
    });
}

fn bench_scalability_planning(c: &mut Criterion) {
    // The Table V/Fig. 8 system path across core counts (training
    // excluded).
    let nets: Vec<_> = [4usize, 8, 16, 32]
        .iter()
        .map(|&n| (n, models::convnet_variant([64, 160, 320], n, 0).expect("net").spec()))
        .collect();
    c.bench_function("table5_system_eval_4_to_32_cores", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (cores, spec) in &nets {
                let model = SystemModel::paper(*cores).expect("model");
                let plan = Plan::dense(spec, *cores, 2).expect("plan");
                total += model.evaluate(&plan).expect("evaluate").total_cycles as f64;
            }
            total
        })
    });
}

fn bench_fig6_matrix_path(c: &mut Criterion) {
    // Group-matrix extraction from a network (training excluded).
    let net = models::mlp(28 * 28, 10, 0).expect("net");
    let spec = net.spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let layout = plan.layer("ip2").and_then(|l| l.layout.clone()).expect("layout");
    let weights = net.layer_weight("ip2").expect("weights").value.as_slice().to_vec();
    c.bench_function("fig6_group_matrix_extraction", |b| {
        b.iter(|| layout.norm_matrix(black_box(&weights)))
    });
}

fn bench_sparse_plan_construction(c: &mut Criterion) {
    // Sparsity-aware traffic generation (the Plan::build hot path).
    let net = models::mlp(28 * 28, 10, 0).expect("net");
    c.bench_function("sparse_plan_build_mlp_16c", |b| {
        b.iter(|| plan_for(black_box(&net), 16, true, true).expect("plan"))
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_table1, bench_motivation, bench_system_evaluation,
        bench_structure_level_plan, bench_sparsified_pipeline_micro,
        bench_scalability_planning, bench_fig6_matrix_path,
        bench_sparse_plan_construction
);
criterion_main!(tables);
