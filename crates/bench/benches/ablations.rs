//! Ablation studies over the design choices called out in `DESIGN.md` §5,
//! plus wall-clock timings of the evaluation paths they exercise.
//!
//! Run with `cargo bench --bench ablations`. The ablation result tables
//! are printed once before the timing loops; timings land in
//! `BENCH_ablations.json`.

use lts_accel::{CoreConfig, CoreModel};
use lts_bench::timing::{time, BenchReport};
use lts_core::experiment::EffortPreset;
use lts_core::pipeline::{plan_for, train_baseline, train_sparsified};
use lts_core::strategy::SparsityScheme;
use lts_core::SystemModel;
use lts_datasets::presets::synth_mnist;
use lts_nn::models;
use lts_nn::prune::PruneCriterion;
use lts_noc::analytic::analyze;
use lts_noc::{EnergyModel, Mesh2d, NocConfig};
use lts_partition::Plan;

fn micro_preset() -> EffortPreset {
    EffortPreset {
        train_samples: 128,
        test_samples: 64,
        epochs: 3,
        fine_tune_epochs: 1,
        batch_size: 32,
        seed: 2019,
    }
}

/// Ablation 1 — NoC fidelity: what the flit-level simulation adds over
/// the closed-form hop model (congestion makes real makespans exceed the
/// analytic lower bound, most during dense layer-transition bursts).
fn ablation_noc_fidelity() {
    println!("\n--- ablation: flit-level simulation vs analytic lower bound (LeNet, 16 cores) ---");
    let spec = lts_nn::descriptor::lenet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let config = NocConfig::paper_16core();
    let mut sim = lts_noc::Simulator::new(config).expect("sim");
    println!("{:<8} {:>12} {:>12} {:>7}", "layer", "analytic", "simulated", "ratio");
    for lp in &plan.layers {
        if lp.traffic.is_empty() {
            continue;
        }
        let bound = analyze(&config, &lp.traffic).makespan_lower_bound;
        let sim_makespan = sim.run(&lp.traffic.messages).expect("run").makespan;
        println!(
            "{:<8} {:>12} {:>12} {:>6.2}x",
            lp.spec.name,
            bound,
            sim_makespan,
            sim_makespan as f64 / bound.max(1) as f64
        );
    }
}

/// Ablation 2 — distance-mask power: 0 (off-core-uniform), 1 (the
/// paper's SS_Mask), 2 (quadratic) on the micro MLP.
fn ablation_distance_power() {
    println!("\n--- ablation: distance-mask power (MLP, 16 cores, lambda 2.0) ---");
    let preset = micro_preset();
    let data = synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let config = preset.pipeline_config();
    let mesh = Mesh2d::new(4, 4);
    let model = SystemModel::paper(16).expect("model");
    let baseline =
        train_baseline(models::mlp(28 * 28, 10, preset.seed).expect("net"), &data, &config)
            .expect("baseline");
    let base_plan = plan_for(&baseline.network, 16, false, true).expect("plan");
    let base = model.evaluate(&base_plan).expect("evaluate");
    println!(
        "{:<10} {:>8} {:>12} {:>9} {:>16}",
        "power", "accuracy", "traffic rate", "speedup", "surviving hops"
    );
    for power in [0.0f32, 1.0, 2.0] {
        let outcome = train_sparsified(
            models::mlp(28 * 28, 10, preset.seed).expect("net"),
            &data,
            &config,
            16,
            SparsityScheme::SsMask { power },
            2.0,
            PruneCriterion::RmsBelowRelative(0.35),
        )
        .expect("sparsified");
        let plan = plan_for(&outcome.network, 16, true, true).expect("plan");
        let report = model.evaluate(&plan).expect("evaluate");
        // Mean hop distance of surviving traffic.
        let mut hops = 0.0f64;
        let mut msgs = 0.0f64;
        for lp in &plan.layers {
            for m in &lp.traffic.messages {
                hops += mesh.distance(m.src, m.dst) as f64;
                msgs += 1.0;
            }
        }
        println!(
            "{:<10} {:>8.3} {:>11.0}% {:>8.2}x {:>15.2}",
            power,
            outcome.test_accuracy,
            report.traffic_rate_vs(&base) * 100.0,
            report.speedup_vs(&base),
            if msgs > 0.0 { hops / msgs } else { 0.0 }
        );
    }
}

/// Ablation 3 — compute/communication overlap factor in the barrier
/// schedule.
fn ablation_overlap() {
    println!("\n--- ablation: compute/communication overlap (LeNet dense, 16 cores) ---");
    let spec = lts_nn::descriptor::lenet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    println!("{:<9} {:>12} {:>11}", "overlap", "total cycles", "comm share");
    for overlap in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let model = SystemModel::paper(16).expect("model").with_overlap(overlap);
        let report = model.evaluate(&plan).expect("evaluate");
        println!(
            "{:<9} {:>12} {:>10.1}%",
            overlap,
            report.total_cycles,
            report.comm_share() * 100.0
        );
    }
}

/// Ablation 4 — prune-threshold sweep on one SS_Mask-trained MLP.
fn ablation_prune_threshold() {
    println!("\n--- ablation: prune threshold (SS_Mask MLP, lambda 2.0, 16 cores) ---");
    let preset = micro_preset();
    let data = synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let config = preset.pipeline_config();
    let model = SystemModel::paper(16).expect("model");
    let baseline =
        train_baseline(models::mlp(28 * 28, 10, preset.seed).expect("net"), &data, &config)
            .expect("baseline");
    let base_plan = plan_for(&baseline.network, 16, false, true).expect("plan");
    let base = model.evaluate(&base_plan).expect("evaluate");
    println!("{:<11} {:>8} {:>13} {:>9}", "threshold", "accuracy", "traffic rate", "speedup");
    for threshold in [0.1f32, 0.25, 0.5, 0.75] {
        let outcome = train_sparsified(
            models::mlp(28 * 28, 10, preset.seed).expect("net"),
            &data,
            &config,
            16,
            SparsityScheme::mask(),
            2.0,
            PruneCriterion::RmsBelowRelative(threshold),
        )
        .expect("sparsified");
        let plan = plan_for(&outcome.network, 16, true, true).expect("plan");
        let report = model.evaluate(&plan).expect("evaluate");
        println!(
            "{:<11} {:>8.3} {:>12.0}% {:>8.2}x",
            threshold,
            outcome.test_accuracy,
            report.traffic_rate_vs(&base) * 100.0,
            report.speedup_vs(&base)
        );
    }
}

/// Ablation 5 — weight residency: the paper's preloaded-weights
/// assumption vs streaming weights from DRAM.
fn ablation_weight_residency() {
    println!("\n--- ablation: weight residency (AlexNet dense, 16 cores) ---");
    let spec = lts_nn::descriptor::alexnet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    for (label, resident) in [("resident (paper)", true), ("streaming", false)] {
        let core = CoreModel::new(CoreConfig::diannao()).with_resident_weights(resident);
        let model = SystemModel::new(core, NocConfig::paper_16core(), EnergyModel::default());
        let report = model.evaluate(&plan).expect("evaluate");
        println!(
            "{:<17} total {:>9} cycles, comm share {:>5.1}%",
            label,
            report.total_cycles,
            report.comm_share() * 100.0
        );
    }
}

/// Ablation 7 — traffic-suppression granularity: deciding per input unit
/// (ours) vs per whole producer→consumer group, on one SS_Mask-trained
/// MLP.
fn ablation_granularity() {
    use lts_partition::traffic::group_level_volume_bytes;
    println!("\n--- ablation: traffic-suppression granularity (SS_Mask MLP, 16 cores) ---");
    let preset = micro_preset();
    let data = synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let config = preset.pipeline_config();
    let outcome = train_sparsified(
        models::mlp(28 * 28, 10, preset.seed).expect("net"),
        &data,
        &config,
        16,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )
    .expect("sparsified");
    let plan = plan_for(&outcome.network, 16, true, true).expect("plan");
    let dense = plan_for(&outcome.network, 16, false, true).expect("plan");
    println!("{:<8} {:>12} {:>12} {:>12}", "layer", "dense B", "per-group B", "per-unit B");
    for (lp, dp) in plan.layers.iter().zip(&dense.layers) {
        let Some(layout) = &lp.layout else { continue };
        if dp.traffic.is_empty() {
            continue;
        }
        let weights = lts_core::pipeline::weights_map(&outcome.network, true);
        let Some(w) = weights.get(&lp.spec.name) else { continue };
        // Reconstruct the producer ownership from the layout's in-blocks.
        let producer = lts_partition::OwnershipMap::from_blocks(
            (0..layout.cores()).map(|p| layout.in_block(p)).collect(),
            1,
        );
        let per_group = group_level_volume_bytes(&producer, layout, w, 2);
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            lp.spec.name,
            dp.traffic.total_bytes(),
            per_group,
            lp.traffic.total_bytes()
        );
    }
}

/// Ablation 8 — lasso optimization mode: proximal (ours) vs subgradient
/// at the same λ and epoch budget.
fn ablation_lasso_mode() {
    use lts_nn::regularizer::{GroupLasso, LassoMode};
    use lts_nn::trainer::Trainer;
    println!("\n--- ablation: group-Lasso mode (MLP ip2, lambda 2.0, 16 cores) ---");
    let preset = micro_preset();
    let data = synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let config = preset.pipeline_config();
    let spec = models::mlp(28 * 28, 10, preset.seed).expect("net").spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let layout = plan.layer("ip2").and_then(|l| l.layout.clone()).expect("layout");
    let mask = lts_core::pipeline::strength_mask(16, SparsityScheme::mask()).expect("mask");
    println!("{:<12} {:>14} {:>12}", "mode", "zero groups", "train acc");
    for mode in [LassoMode::Proximal, LassoMode::Subgradient] {
        let mut net = models::mlp(28 * 28, 10, preset.seed).expect("net");
        let reg = GroupLasso::new("ip2", layout.clone(), 2.0, mask.clone())
            .expect("regularizer")
            .with_mode(mode);
        let trainer = Trainer::new(config.train).expect("trainer").with_regularizer(reg);
        let stats = trainer.train(&mut net, &data.train.images, &data.train.labels).expect("train");
        let w = net.layer_weight("ip2").expect("ip2");
        let zeros = lts_nn::prune::zero_group_count(&layout, w.value.as_slice());
        println!("{:<12} {:>10}/256 {:>11.3}", format!("{mode:?}"), zeros, stats.final_accuracy());
    }
    println!("(proximal produces exact zero groups during training; the subgradient");
    println!(" merely shrinks them and relies entirely on post-hoc thresholding)");
}

/// Ablation 6 — routing policy: XY vs YX vs O1TURN on the densest LeNet
/// transition burst and on transpose traffic (O1TURN's best case).
fn ablation_routing_policy() {
    use lts_noc::traffic::{Message, TrafficTrace};
    use lts_noc::RoutingPolicy;
    println!("\n--- ablation: routing policy (16 cores) ---");
    let plan = Plan::dense(&lts_nn::descriptor::lenet_spec(), 16, 2).expect("plan");
    let burst = plan.layer("conv2").expect("conv2").traffic.clone();
    let transpose: TrafficTrace = (0..4usize)
        .flat_map(|i| (0..4usize).map(move |j| (i * 4 + j, j * 4 + i)))
        .filter(|&(s, d)| s != d)
        .map(|(s, d)| Message::new(s, d, 2048, 0))
        .collect();
    println!(
        "{:<9} {:>16} {:>12} {:>18} {:>12}",
        "policy", "lenet burst", "hot link", "transpose", "hot link"
    );
    for policy in [RoutingPolicy::XyDor, RoutingPolicy::YxDor, RoutingPolicy::O1Turn] {
        let mut config = NocConfig::paper_16core();
        config.routing = policy;
        let mut sim = lts_noc::Simulator::new(config).expect("sim");
        let b = sim.run(&burst.messages).expect("run");
        let t = sim.run(&transpose.messages).expect("run");
        println!(
            "{:<9} {:>15}c {:>12} {:>17}c {:>12}",
            format!("{policy:?}"),
            b.makespan,
            b.max_link_flits(),
            t.makespan,
            t.max_link_flits()
        );
    }
}

fn bench_ablation_paths(report: &mut BenchReport) {
    // Time the system-evaluation path the ablations lean on.
    let spec = lts_nn::descriptor::lenet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let model = SystemModel::paper(16).expect("model");
    report.push(time("ablation_system_eval_lenet", 2, 10, || {
        model.evaluate(&plan).expect("evaluate");
    }));
    let config = NocConfig::paper_16core();
    report.push(time("ablation_analytic_model_lenet", 2, 10, || {
        plan.layers
            .iter()
            .map(|lp| analyze(&config, &lp.traffic).makespan_lower_bound)
            .sum::<u64>();
    }));
}

fn main() {
    ablation_noc_fidelity();
    ablation_overlap();
    ablation_weight_residency();
    ablation_routing_policy();
    ablation_distance_power();
    ablation_prune_threshold();
    ablation_granularity();
    ablation_lasso_mode();
    println!("\n--- timings ---");
    let mut report = BenchReport::new("ablations", "micro");
    bench_ablation_paths(&mut report);
    report.write_checked().expect("write benchmark report");
}
