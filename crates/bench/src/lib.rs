//! Shared helpers for the benchmark/regeneration binaries.
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured values. The effort level is chosen with the
//! `LTS_EFFORT` environment variable (`quick` or `paper`, default
//! `paper`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lts_core::experiment::EffortPreset;

/// Reads the effort preset from `LTS_EFFORT` (default: `paper`).
///
/// # Panics
///
/// Panics on an unrecognized value, listing the accepted ones.
pub fn effort_from_env() -> EffortPreset {
    match std::env::var("LTS_EFFORT").as_deref() {
        Ok("quick") => EffortPreset::quick(),
        Ok("paper") | Err(_) => EffortPreset::paper(),
        Ok(other) => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, preset: &EffortPreset) {
    println!("=== Learn-to-Scale reproduction: {what} ===");
    println!(
        "(effort: {} train / {} test samples, {} epochs, seed {})\n",
        preset.train_samples, preset.test_samples, preset.epochs, preset.seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_effort_is_paper() {
        // Unless the variable is set in the environment running the tests.
        if std::env::var("LTS_EFFORT").is_err() {
            assert_eq!(effort_from_env(), EffortPreset::paper());
        }
    }
}
