//! Shared helpers for the benchmark/regeneration binaries.
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured values. The effort level is chosen with the
//! `LTS_EFFORT` environment variable (`quick` or `paper`, default
//! `paper`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lts_core::experiment::EffortPreset;

/// Reads the effort preset from `LTS_EFFORT` (default: `paper`).
///
/// # Panics
///
/// Panics on an unrecognized value, listing the accepted ones.
pub fn effort_from_env() -> EffortPreset {
    match std::env::var("LTS_EFFORT").as_deref() {
        Ok("quick") => EffortPreset::quick(),
        Ok("paper") | Err(_) => EffortPreset::paper(),
        Ok(other) => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, preset: &EffortPreset) {
    println!("=== Learn-to-Scale reproduction: {what} ===");
    println!(
        "(effort: {} train / {} test samples, {} epochs, seed {})\n",
        preset.train_samples, preset.test_samples, preset.epochs, preset.seed
    );
}

pub mod timing {
    //! Minimal wall-clock benchmark harness.
    //!
    //! The bench binaries time closures with explicit warmup/measure
    //! iteration counts, print a human-readable table, and write a
    //! `BENCH_<name>.json` report so runs are comparable across machines.
    //! Reports always record the host's available parallelism and the
    //! engine's worker count, because kernel timings are meaningless
    //! without them.

    use serde::Serialize;
    use std::time::Instant;

    /// Timing of one benchmarked workload.
    #[derive(Debug, Clone, Serialize)]
    pub struct BenchRecord {
        /// Workload label.
        pub name: String,
        /// Execution-engine worker count the workload ran with.
        pub threads: usize,
        /// Measured iterations (after warmup).
        pub iters: usize,
        /// Mean wall-clock per iteration, milliseconds.
        pub mean_ms: f64,
        /// Fastest iteration, milliseconds.
        pub min_ms: f64,
        /// Slowest iteration, milliseconds.
        pub max_ms: f64,
    }

    /// Times `f` for `iters` iterations after `warmup` untimed ones.
    pub fn time(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) -> BenchRecord {
        for _ in 0..warmup {
            f();
        }
        let iters = iters.max(1);
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let sum: f64 = samples.iter().sum();
        BenchRecord {
            name: name.to_string(),
            threads: lts_tensor::par::current().threads(),
            iters,
            mean_ms: sum / iters as f64,
            min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_ms: samples.iter().copied().fold(0.0, f64::max),
        }
    }

    /// A full benchmark report: host facts plus one record per workload.
    #[derive(Debug, Clone, Serialize)]
    pub struct BenchReport {
        /// Benchmark binary name.
        pub bench: String,
        /// Effort preset label (`quick`/`paper`).
        pub effort: String,
        /// The host's available hardware parallelism.
        pub host_cpus: usize,
        /// Free-form caveats (e.g. "host has fewer cores than the sweep").
        pub notes: Vec<String>,
        /// One entry per timed workload.
        pub records: Vec<BenchRecord>,
    }

    impl BenchReport {
        /// Empty report for the named benchmark.
        pub fn new(bench: &str, effort: &str) -> Self {
            Self {
                bench: bench.to_string(),
                effort: effort.to_string(),
                host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                notes: Vec::new(),
                records: Vec::new(),
            }
        }

        /// Adds a record and echoes it to stdout.
        pub fn push(&mut self, record: BenchRecord) {
            println!(
                "{:<44} {:>2} thr  {:>10.3} ms/iter  (min {:.3}, max {:.3}, {} iters)",
                record.name,
                record.threads,
                record.mean_ms,
                record.min_ms,
                record.max_ms,
                record.iters
            );
            self.records.push(record);
        }

        /// Records a caveat that readers of the JSON need.
        pub fn note(&mut self, note: impl Into<String>) {
            let note = note.into();
            println!("note: {note}");
            self.notes.push(note);
        }

        /// Writes `BENCH_<bench>.json` into `LTS_BENCH_DIR` (default: the
        /// current directory) and reports the path.
        pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
            let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
            let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.bench));
            let json = serde_json::to_string_pretty(self)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            std::fs::write(&path, json + "\n")?;
            println!("\nwrote {}", path.display());
            Ok(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_effort_is_paper() {
        // Unless the variable is set in the environment running the tests.
        if std::env::var("LTS_EFFORT").is_err() {
            assert_eq!(effort_from_env(), EffortPreset::paper());
        }
    }

    #[test]
    fn timing_harness_measures_and_serializes() {
        let mut report = timing::BenchReport::new("selftest", "quick");
        let mut n = 0u64;
        let record = timing::time("spin", 1, 3, || {
            for i in 0..10_000u64 {
                n = n.wrapping_add(i);
            }
        });
        assert_eq!(record.iters, 3);
        assert!(record.min_ms <= record.mean_ms && record.mean_ms <= record.max_ms);
        report.push(record);
        report.note("self-test");
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"bench\":\"selftest\""), "{json}");
        assert!(json.contains("\"spin\""), "{json}");
    }
}
