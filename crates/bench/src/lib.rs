//! Shared helpers for the benchmark/regeneration binaries.
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured values. The effort level is chosen with the
//! `LTS_EFFORT` environment variable (`quick` or `paper`, default
//! `paper`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;

use lts_core::experiment::EffortPreset;

/// Reads the effort preset from `LTS_EFFORT` (default: `paper`).
///
/// Every experiment binary calls this first, so it doubles as the hook
/// that honors `LTS_OBS=1` (see [`lts_obs::enable_from_env`]): set it
/// and any binary records probe spans and cycle timelines for the run.
///
/// # Panics
///
/// Panics on an unrecognized value, listing the accepted ones.
pub fn effort_from_env() -> EffortPreset {
    lts_obs::enable_from_env();
    match std::env::var("LTS_EFFORT").as_deref() {
        Ok("quick") => EffortPreset::quick(),
        Ok("paper") | Err(_) => EffortPreset::paper(),
        Ok(other) => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, preset: &EffortPreset) {
    println!("=== Learn-to-Scale reproduction: {what} ===");
    println!(
        "(effort: {} train / {} test samples, {} epochs, seed {})\n",
        preset.train_samples, preset.test_samples, preset.epochs, preset.seed
    );
}

pub mod timing {
    //! Minimal wall-clock benchmark harness.
    //!
    //! The bench binaries time closures with explicit warmup/measure
    //! iteration counts, print a human-readable table, and write a
    //! `BENCH_<name>.json` report so runs are comparable across machines.
    //! Reports always record the host's available parallelism and the
    //! engine's worker count, because kernel timings are meaningless
    //! without them.
    //!
    //! Two environment knobs make the harness CI-friendly:
    //!
    //! * `LTS_BENCH_ITERS` caps measured iterations (see
    //!   [`iters_from_env`]) so a smoke run finishes in seconds;
    //! * `LTS_BENCH_BASELINE` names a previously written `BENCH_*.json`;
    //!   [`BenchReport::write_checked`] then compares each record's
    //!   `mean_ms` against it and fails on a >25 % regression.

    use serde::{Deserialize, Serialize};
    use std::time::Instant;

    /// Provenance of the host a report was produced on, so two
    /// `BENCH_*.json` files can be compared knowing whether the
    /// toolchain or the tree changed between them.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub struct HostFingerprint {
        /// `rustc -V` output (or `unknown` when unavailable).
        pub rustc: String,
        /// `git rev-parse --short HEAD` (or `unknown` outside a repo).
        pub git_rev: String,
        /// Compile-time target OS.
        pub os: String,
        /// Whether the working tree had uncommitted changes — without
        /// this, `git_rev` can silently describe code that was never
        /// measured. `None` when git is unavailable (and in reports
        /// written before the field existed).
        pub git_dirty: Option<bool>,
    }

    impl HostFingerprint {
        /// Probes the host. Never fails: anything unqueryable is
        /// recorded as `unknown`.
        pub fn probe() -> Self {
            let run = |cmd: &str, args: &[&str]| -> String {
                std::process::Command::new(cmd)
                    .args(args)
                    .output()
                    .ok()
                    .filter(|o| o.status.success())
                    .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                    .filter(|s| !s.is_empty())
                    .unwrap_or_else(|| "unknown".into())
            };
            let git_dirty = std::process::Command::new("git")
                .args(["status", "--porcelain"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| !String::from_utf8_lossy(&o.stdout).trim().is_empty());
            Self {
                rustc: run("rustc", &["-V"]),
                git_rev: run("git", &["rev-parse", "--short", "HEAD"]),
                os: std::env::consts::OS.to_string(),
                git_dirty,
            }
        }
    }

    /// Mean-time regression tolerance for [`BenchReport::write_checked`]:
    /// a record must be more than 25 % slower than the baseline to fail
    /// the run (wall-clock noise on shared hosts sits well below that).
    pub const REGRESSION_TOLERANCE: f64 = 0.25;

    /// Probe medians below this (milliseconds) are exempt from the
    /// regression gate: at sub-50 µs scale scheduler jitter swamps any
    /// real signal.
    pub const PROBE_GATE_FLOOR_MS: f64 = 0.05;

    /// Measured-iteration count: `LTS_BENCH_ITERS` when set (parsed,
    /// minimum 1), else `default`. Lets CI smoke-run the heavy benches.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to something unparsable.
    pub fn iters_from_env(default: usize) -> usize {
        match std::env::var("LTS_BENCH_ITERS") {
            Ok(v) => v
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("LTS_BENCH_ITERS must be an integer, got `{v}`"))
                .max(1),
            Err(_) => default,
        }
    }

    /// Timing of one benchmarked workload.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct BenchRecord {
        /// Workload label.
        pub name: String,
        /// Execution-engine worker count the workload ran with.
        pub threads: usize,
        /// Measured iterations (after warmup).
        pub iters: usize,
        /// Mean wall-clock per iteration, milliseconds.
        pub mean_ms: f64,
        /// Fastest iteration, milliseconds.
        pub min_ms: f64,
        /// Slowest iteration, milliseconds.
        pub max_ms: f64,
        /// Median wall-clock per iteration, milliseconds (`Option` so
        /// pre-history `BENCH_*.json` baselines still load).
        pub median_ms: Option<f64>,
        /// Median absolute deviation across iterations, milliseconds — a
        /// robust dispersion estimate one outlier iteration cannot
        /// inflate (`Option` for the same loadability reason).
        pub mad_ms: Option<f64>,
        /// History-runner repetitions aggregated into this record;
        /// `None` for a plain single-run timing.
        pub reps: Option<usize>,
    }

    /// Times `f` for `iters` iterations after `warmup` untimed ones.
    pub fn time(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) -> BenchRecord {
        for _ in 0..warmup {
            f();
        }
        let iters = iters.max(1);
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let sum: f64 = samples.iter().sum();
        BenchRecord {
            name: name.to_string(),
            threads: lts_tensor::par::current().threads(),
            iters,
            mean_ms: sum / iters as f64,
            min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_ms: samples.iter().copied().fold(0.0, f64::max),
            median_ms: Some(crate::history::stats::median(&samples)),
            mad_ms: Some(crate::history::stats::mad(&samples)),
            reps: None,
        }
    }

    /// A full benchmark report: host facts plus one record per workload.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct BenchReport {
        /// Benchmark binary name.
        pub bench: String,
        /// Effort preset label (`quick`/`paper`).
        pub effort: String,
        /// The host's available hardware parallelism.
        pub host_cpus: usize,
        /// Free-form caveats (e.g. "host has fewer cores than the sweep").
        pub notes: Vec<String>,
        /// One entry per timed workload.
        pub records: Vec<BenchRecord>,
        /// Host provenance (`Option` so pre-fingerprint reports load).
        pub fingerprint: Option<HostFingerprint>,
        /// Probe-path statistics captured by `lts-obs` during the run
        /// (`Option` so pre-observability reports load).
        pub probes: Option<Vec<lts_obs::ProbeRow>>,
    }

    impl BenchReport {
        /// Empty report for the named benchmark.
        pub fn new(bench: &str, effort: &str) -> Self {
            Self {
                bench: bench.to_string(),
                effort: effort.to_string(),
                host_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                notes: Vec::new(),
                records: Vec::new(),
                fingerprint: Some(HostFingerprint::probe()),
                probes: None,
            }
        }

        /// Snapshots the live `lts-obs` probe statistics into the report
        /// so [`BenchReport::regressions_vs`] can gate on per-probe
        /// medians, not just end-to-end means.
        pub fn attach_probes(&mut self) {
            self.probes = Some(lts_obs::snapshot().probes);
        }

        /// Adds a record and echoes it to stdout.
        pub fn push(&mut self, record: BenchRecord) {
            println!(
                "{:<44} {:>2} thr  {:>10.3} ms/iter  (min {:.3}, max {:.3}, {} iters)",
                record.name,
                record.threads,
                record.mean_ms,
                record.min_ms,
                record.max_ms,
                record.iters
            );
            self.records.push(record);
        }

        /// Records a caveat that readers of the JSON need.
        pub fn note(&mut self, note: impl Into<String>) {
            let note = note.into();
            println!("note: {note}");
            self.notes.push(note);
        }

        /// Writes `BENCH_<bench>.json` into `LTS_BENCH_DIR` (default: the
        /// current directory) and reports the path.
        pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
            let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
            let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.bench));
            let json = serde_json::to_string_pretty(self)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            std::fs::write(&path, json + "\n")?;
            println!("\nwrote {}", path.display());
            Ok(path)
        }

        /// Reads back a report previously produced by [`BenchReport::write`].
        ///
        /// # Errors
        ///
        /// I/O errors, or a parse failure mapped to `InvalidData`.
        pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
            let json = std::fs::read_to_string(path)?;
            serde_json::from_str(&json)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        }

        /// Records of `self` that regressed versus `baseline`: same name,
        /// `mean_ms` more than `tolerance` (fractional) slower. Records
        /// missing from either side are ignored — a rename or a new
        /// workload is not a regression.
        ///
        /// When both reports carry attached probe statistics (see
        /// [`BenchReport::attach_probes`]), per-probe `p50_ms` medians
        /// are gated by the same rule, so a slowdown buried inside one
        /// call path fails the gate even if the end-to-end mean hides
        /// it. Probes whose baseline median sits below
        /// [`PROBE_GATE_FLOOR_MS`] are skipped — scheduler jitter
        /// dominates at that scale.
        pub fn regressions_vs(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
            let mut out: Vec<String> = self
                .records
                .iter()
                .filter_map(|r| {
                    let base = baseline.records.iter().find(|b| b.name == r.name)?;
                    (r.mean_ms > base.mean_ms * (1.0 + tolerance)).then(|| {
                        format!(
                            "{}: {:.3} ms -> {:.3} ms (+{:.0}%)",
                            r.name,
                            base.mean_ms,
                            r.mean_ms,
                            100.0 * (r.mean_ms / base.mean_ms - 1.0)
                        )
                    })
                })
                .collect();
            if let (Some(probes), Some(base_probes)) = (&self.probes, &baseline.probes) {
                out.extend(probes.iter().filter_map(|p| {
                    let base = base_probes.iter().find(|b| b.path == p.path)?;
                    if base.p50_ms < PROBE_GATE_FLOOR_MS {
                        return None;
                    }
                    (p.p50_ms > base.p50_ms * (1.0 + tolerance)).then(|| {
                        format!(
                            "probe {}: p50 {:.3} ms -> {:.3} ms (+{:.0}%)",
                            p.path,
                            base.p50_ms,
                            p.p50_ms,
                            100.0 * (p.p50_ms / base.p50_ms - 1.0)
                        )
                    })
                }));
            }
            out
        }

        /// [`BenchReport::write`], then — when `LTS_BENCH_BASELINE` names
        /// a previous report — the regression gate: every record whose
        /// `mean_ms` grew by more than [`REGRESSION_TOLERANCE`] versus its
        /// baseline namesake is listed and the call fails, so a
        /// `.expect()` in the bench `main` exits the process non-zero.
        ///
        /// When `LTS_BENCH_HISTORY=1`, the report is additionally
        /// appended to the `BENCH_HISTORY/` ledger as a single-repetition
        /// record (see [`crate::history`]), so every existing bench
        /// binary contributes to cross-commit trends without code
        /// changes. Dirty working trees are refused there unless
        /// `LTS_BENCH_ALLOW_DIRTY=1`.
        ///
        /// # Errors
        ///
        /// Write/load errors, or `Other` naming the regressed records.
        pub fn write_checked(&self) -> std::io::Result<std::path::PathBuf> {
            let path = self.write()?;
            if std::env::var("LTS_BENCH_HISTORY").is_ok_and(|v| v != "0") {
                use crate::history;
                let store = history::HistoryStore::open_from_env()
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let record = history::record_from_report(self);
                let entry = store
                    .append(record, history::allow_dirty_from_env())
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                println!("appended history entry {}", entry.display());
            }
            let Ok(baseline_path) = std::env::var("LTS_BENCH_BASELINE") else {
                return Ok(path);
            };
            let baseline = Self::load(&baseline_path)?;
            let regressions = self.regressions_vs(&baseline, REGRESSION_TOLERANCE);
            if regressions.is_empty() {
                println!(
                    "regression gate vs {baseline_path}: ok ({} records compared)",
                    self.records.len()
                );
                return Ok(path);
            }
            for r in &regressions {
                println!("REGRESSION {r}");
            }
            Err(std::io::Error::other(format!(
                "{} record(s) regressed >{:.0}% vs {baseline_path}: {}",
                regressions.len(),
                100.0 * REGRESSION_TOLERANCE,
                regressions.join("; ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_effort_is_paper() {
        // Unless the variable is set in the environment running the tests.
        if std::env::var("LTS_EFFORT").is_err() {
            assert_eq!(effort_from_env(), EffortPreset::paper());
        }
    }

    #[test]
    fn iters_from_env_defaults_when_unset() {
        if std::env::var("LTS_BENCH_ITERS").is_err() {
            assert_eq!(timing::iters_from_env(17), 17);
        }
    }

    #[test]
    fn regression_gate_flags_only_slowdowns_beyond_tolerance() {
        let record = |name: &str, mean_ms: f64| timing::BenchRecord {
            name: name.into(),
            threads: 1,
            iters: 3,
            mean_ms,
            min_ms: mean_ms,
            max_ms: mean_ms,
            median_ms: Some(mean_ms),
            mad_ms: Some(0.0),
            reps: None,
        };
        let mut baseline = timing::BenchReport::new("gate", "quick");
        baseline.records.push(record("stable", 10.0));
        baseline.records.push(record("regressed", 10.0));
        baseline.records.push(record("removed", 10.0));
        let mut current = timing::BenchReport::new("gate", "quick");
        current.records.push(record("stable", 12.0)); // +20% — under the gate
        current.records.push(record("regressed", 13.0)); // +30% — over
        current.records.push(record("added", 99.0)); // no baseline — ignored
        let regressions = current.regressions_vs(&baseline, timing::REGRESSION_TOLERANCE);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].starts_with("regressed:"), "{regressions:?}");
        assert!(current.regressions_vs(&baseline, 0.5).is_empty());
    }

    #[test]
    fn reports_round_trip_through_json() {
        let mut report = timing::BenchReport::new("roundtrip", "quick");
        report.records.push(timing::BenchRecord {
            name: "w".into(),
            threads: 2,
            iters: 5,
            mean_ms: 1.5,
            min_ms: 1.0,
            max_ms: 2.0,
            median_ms: Some(1.4),
            mad_ms: Some(0.2),
            reps: None,
        });
        report.notes.push("a note".into());
        let json = serde_json::to_string(&report).unwrap();
        let back: timing::BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.bench, "roundtrip");
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].name, "w");
        assert_eq!(back.notes, vec!["a note".to_string()]);
    }

    #[test]
    fn pre_history_baselines_still_load() {
        // A BENCH_*.json written before the dispersion fields and the
        // fingerprint dirty-flag existed: every new field must read back
        // as None, and re-serializing must round-trip the rest intact.
        let json = r#"{
            "bench": "old", "effort": "quick", "host_cpus": 1, "notes": [],
            "records": [{"name": "w", "threads": 1, "iters": 2,
                         "mean_ms": 1.0, "min_ms": 0.9, "max_ms": 1.1}],
            "fingerprint": {"rustc": "rustc 1.0", "git_rev": "abc1234", "os": "linux"},
            "probes": null
        }"#;
        let report: timing::BenchReport = serde_json::from_str(json).expect("old report loads");
        let rec = &report.records[0];
        assert_eq!((rec.median_ms, rec.mad_ms, rec.reps), (None, None, None));
        assert_eq!(rec.mean_ms, 1.0);
        let fp = report.fingerprint.as_ref().expect("fingerprint");
        assert_eq!(fp.git_dirty, None, "pre-dirty-flag fingerprints load as unknown");
        let back: timing::BenchReport =
            serde_json::from_str(&serde_json::to_string(&report).expect("serialize"))
                .expect("round-trip");
        assert_eq!(back.records[0].median_ms, None);
        assert_eq!(back.records[0].mean_ms, 1.0);
    }

    #[test]
    fn time_fills_dispersion_fields() {
        let record = timing::time("dispersion", 0, 5, || std::hint::black_box(()));
        let median = record.median_ms.expect("median recorded");
        let mad = record.mad_ms.expect("mad recorded");
        assert!(record.min_ms <= median && median <= record.max_ms, "{record:?}");
        assert!(mad >= 0.0);
        assert_eq!(record.reps, None, "plain timing is not a repetition aggregate");
    }

    #[test]
    fn timing_harness_measures_and_serializes() {
        let mut report = timing::BenchReport::new("selftest", "quick");
        let mut n = 0u64;
        let record = timing::time("spin", 1, 3, || {
            for i in 0..10_000u64 {
                n = n.wrapping_add(i);
            }
        });
        assert_eq!(record.iters, 3);
        assert!(record.min_ms <= record.mean_ms && record.mean_ms <= record.max_ms);
        report.push(record);
        report.note("self-test");
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"bench\":\"selftest\""), "{json}");
        assert!(json.contains("\"spin\""), "{json}");
    }
}
