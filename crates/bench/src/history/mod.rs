//! Cross-commit performance history: the evobench-style "level 2/3"
//! pipeline (see `DESIGN.md` §18).
//!
//! The single-baseline 25 % gate in [`crate::timing`] catches a blown-up
//! hot path within one run, but it cannot catch slow drift across
//! commits, and on a noisy 1-CPU host it cannot distinguish a real 10 %
//! regression from scheduler jitter. This module adds the missing rigor
//! in three pieces:
//!
//! * **[`runner`]** — executes an existing bench N repetitions (reusing
//!   [`crate::timing::BenchReport`] and the `lts-obs` probe snapshot),
//!   aggregates per-metric median-of-medians with MAD dispersion, and
//!   keeps the raw per-repetition samples;
//! * **[`store`]** — appends one self-contained record, keyed by
//!   (git rev, bench, params hash, host fingerprint), to an append-only
//!   `BENCH_HISTORY/` directory of JSON files; dirty working trees are
//!   refused with a typed error unless `LTS_BENCH_ALLOW_DIRTY=1`;
//! * **[`compare`] / [`trend`]** — a Mann–Whitney U rank test per metric
//!   yields typed `Regression`/`Improvement`/`NoChange`/`Inconclusive`
//!   verdicts with effect sizes ([`stats`]), and the trend renderer walks
//!   the full ledger into a sparkline table with dispersion bands and the
//!   first regressing commit.
//!
//! Driven by the `bench_history` binary; existing bench binaries opt in
//! via `LTS_BENCH_HISTORY=1`, which makes
//! [`crate::timing::BenchReport::write_checked`] also append a
//! single-repetition record.

pub mod compare;
pub mod runner;
pub mod stats;
pub mod store;
pub mod trend;

pub use compare::{compare_records, ComparisonReport, MetricVerdict};
pub use runner::{aggregate, record_from_report, run_repetitions, RunSpec};
pub use stats::{classify, mad, mann_whitney_u, median, SignificanceConfig, Verdict};
pub use store::{
    allow_dirty_from_env, fnv1a64_hex, history_root_from_env, HistoryError, HistoryRecord,
    HistoryStore, MetricKind, MetricSeries,
};
pub use trend::{sparkline, trend_report, TrendReport};
