//! Repetition runner: executes an existing bench N times and aggregates
//! the per-repetition reports into one [`HistoryRecord`].
//!
//! Each repetition produces a full [`BenchReport`] — wall-clock records
//! with per-iteration medians, plus the `lts-obs` probe snapshot so call
//! paths get trend coverage, not just end-to-end timings. Aggregation is
//! evobench's "level 2": per metric, take each repetition's median, then
//! the median of *those* (median-of-medians) with MAD dispersion. Raw
//! per-repetition samples are kept in the record because the comparator's
//! rank test operates on distributions.

use super::store::{
    fnv1a64_hex, HistoryError, HistoryRecord, MetricKind, MetricSeries, SCHEMA_VERSION,
};
use crate::timing::{BenchReport, HostFingerprint};

/// Identity of a history measurement: which bench, under which parameters.
/// `params` must name everything that changes what is measured (effort
/// tier, iteration caps, thread count) — records with different
/// `params_hash` are never treated as comparable.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Benchmark name (ledger subdirectory).
    pub bench: String,
    /// Canonical parameter string.
    pub params: String,
    /// Effort preset label.
    pub effort: String,
    /// Measured repetitions to aggregate.
    pub reps: usize,
    /// Discarded warmup repetitions run first (cache/JIT/page warm).
    pub warmup_reps: usize,
}

/// Runs `run_once` for `spec.warmup_reps + spec.reps` repetitions and
/// aggregates the measured ones into a [`HistoryRecord`].
///
/// Before every repetition the `lts-obs` registries are reset so each
/// report's probe p50s describe that repetition alone; if `run_once`
/// forgot to attach probes, they are attached here from the live
/// snapshot. The caller controls whether obs recording is enabled.
///
/// # Errors
///
/// [`HistoryError::NotEnoughHistory`]-free by construction; fails only
/// when `spec.reps == 0`.
pub fn run_repetitions(
    spec: &RunSpec,
    mut run_once: impl FnMut(usize) -> BenchReport,
) -> Result<HistoryRecord, HistoryError> {
    if spec.reps == 0 {
        return Err(HistoryError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "history runner needs at least one measured repetition",
        )));
    }
    for w in 0..spec.warmup_reps {
        lts_obs::reset();
        let _ = run_once(w);
    }
    let mut reports = Vec::with_capacity(spec.reps);
    for rep in 0..spec.reps {
        lts_obs::reset();
        let mut report = run_once(spec.warmup_reps + rep);
        if report.probes.is_none() {
            report.attach_probes();
        }
        reports.push(report);
    }
    Ok(aggregate(spec, &reports))
}

/// Aggregates per-repetition reports into one [`HistoryRecord`] (the pure
/// half of [`run_repetitions`], separated for testability).
///
/// Metrics are the record names and probe paths present in **every**
/// repetition — a workload or call path that appeared only sometimes
/// cannot be compared across commits, and is noted instead of silently
/// aggregated.
pub fn aggregate(spec: &RunSpec, reports: &[BenchReport]) -> HistoryRecord {
    let mut metrics = Vec::new();
    let mut notes: Vec<String> = Vec::new();

    // Record series, in first-repetition order.
    if let Some(first) = reports.first() {
        for rec in &first.records {
            let samples: Vec<f64> = reports
                .iter()
                .filter_map(|rep| {
                    rep.records
                        .iter()
                        .find(|r| r.name == rec.name)
                        .map(|r| r.median_ms.unwrap_or(r.mean_ms))
                })
                .collect();
            if samples.len() == reports.len() {
                metrics.push(MetricSeries::from_samples(&rec.name, MetricKind::Record, samples));
            } else {
                notes.push(format!(
                    "record `{}` present in only {}/{} repetitions; excluded from history",
                    rec.name,
                    samples.len(),
                    reports.len()
                ));
            }
        }
        // Probe series, sorted by path (snapshot order is already sorted).
        for probe in first.probes.iter().flatten() {
            let samples: Vec<f64> = reports
                .iter()
                .filter_map(|rep| {
                    rep.probes.iter().flatten().find(|p| p.path == probe.path).map(|p| p.p50_ms)
                })
                .collect();
            if samples.len() == reports.len() {
                metrics.push(MetricSeries::from_samples(&probe.path, MetricKind::Probe, samples));
            } else {
                notes.push(format!(
                    "probe `{}` present in only {}/{} repetitions; excluded from history",
                    probe.path,
                    samples.len(),
                    reports.len()
                ));
            }
        }
        for note in &first.notes {
            if !notes.contains(note) {
                notes.push(note.clone());
            }
        }
    }

    let fingerprint = HostFingerprint::probe();
    HistoryRecord {
        schema: SCHEMA_VERSION,
        seq: 0, // assigned by the store at append time
        bench: spec.bench.clone(),
        params: spec.params.clone(),
        params_hash: fnv1a64_hex(&spec.params),
        git_rev: fingerprint.git_rev.clone(),
        git_dirty: fingerprint.git_dirty.unwrap_or(false),
        effort: spec.effort.clone(),
        reps: reports.len(),
        fingerprint,
        notes,
        metrics,
    }
}

/// Converts an already-written [`BenchReport`] into a single-repetition
/// [`HistoryRecord`] — the `LTS_BENCH_HISTORY=1` hook in
/// [`BenchReport::write_checked`] uses this so every existing bench binary
/// contributes to the ledger without code changes. Single-rep entries are
/// honest about their weakness: the comparator's `min_samples` floor
/// keeps them [`super::stats::Verdict::Inconclusive`] until enough runs
/// accumulate.
pub fn record_from_report(report: &BenchReport) -> HistoryRecord {
    let params = format!(
        "effort={};iters=env;threads={}",
        report.effort,
        report.records.first().map_or(0, |r| r.threads)
    );
    let spec = RunSpec {
        bench: report.bench.clone(),
        params,
        effort: report.effort.clone(),
        reps: 1,
        warmup_reps: 0,
    };
    aggregate(&spec, std::slice::from_ref(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::BenchRecord;

    fn spec(reps: usize) -> RunSpec {
        RunSpec {
            bench: "t".into(),
            params: "p".into(),
            effort: "quick".into(),
            reps,
            warmup_reps: 1,
        }
    }

    fn report_with(mean: f64, median: Option<f64>) -> BenchReport {
        let mut r = BenchReport::new("t", "quick");
        r.records.push(BenchRecord {
            name: "w".into(),
            threads: 1,
            iters: 3,
            mean_ms: mean,
            min_ms: mean,
            max_ms: mean,
            median_ms: median,
            mad_ms: median.map(|_| 0.0),
            reps: None,
        });
        r
    }

    #[test]
    fn runner_discards_warmup_and_aggregates_measured_reps() {
        let mut calls = Vec::new();
        let rec = run_repetitions(&spec(3), |i| {
            calls.push(i);
            report_with(10.0 + i as f64, Some(10.0 + i as f64))
        })
        .expect("run");
        assert_eq!(calls, vec![0, 1, 2, 3], "1 warmup + 3 measured");
        assert_eq!(rec.reps, 3);
        let m = rec.metric(MetricKind::Record, "w").expect("series");
        // Measured reps were called with i = 1, 2, 3.
        assert_eq!(m.samples, vec![11.0, 12.0, 13.0]);
        assert_eq!(m.median_ms, 12.0);
    }

    #[test]
    fn zero_reps_is_a_typed_error() {
        let err = run_repetitions(&spec(0), |_| report_with(1.0, None)).expect_err("refused");
        assert!(err.to_string().contains("at least one"), "{err}");
    }

    #[test]
    fn aggregate_prefers_median_falls_back_to_mean() {
        let reports = vec![report_with(10.0, Some(9.0)), report_with(20.0, None)];
        let rec = aggregate(&spec(2), &reports);
        let m = rec.metric(MetricKind::Record, "w").expect("series");
        assert_eq!(m.samples, vec![9.0, 20.0], "median when present, mean otherwise");
    }

    #[test]
    fn partially_present_metrics_are_noted_not_aggregated() {
        let mut second = report_with(10.0, Some(10.0));
        second.records[0].name = "renamed".into();
        let reports = vec![report_with(10.0, Some(10.0)), second];
        let rec = aggregate(&spec(2), &reports);
        assert!(rec.metric(MetricKind::Record, "w").is_none());
        assert!(rec.notes.iter().any(|n| n.contains("only 1/2")), "{:?}", rec.notes);
    }

    #[test]
    fn record_from_report_is_single_rep() {
        let rec = record_from_report(&report_with(5.0, Some(5.0)));
        assert_eq!(rec.reps, 1);
        assert_eq!(rec.bench, "t");
        let m = rec.metric(MetricKind::Record, "w").expect("series");
        assert_eq!(m.samples, vec![5.0]);
        assert!(rec.params.contains("effort=quick"), "{}", rec.params);
    }
}
