//! Trend reports: walk a bench's full history and render per-metric
//! sparkline rows with dispersion bands, the latest verdict, and the
//! first regressing commit — as markdown for humans and JSON for tooling
//! (the consolidated-matrix-summary idiom of pg-stream's bench guide).

use super::compare::compare_records;
use super::stats::{SignificanceConfig, Verdict};
use super::store::{HistoryRecord, MetricKind};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One history entry's aggregate for one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Ledger sequence number.
    pub seq: u64,
    /// Commit the entry was measured at.
    pub rev: String,
    /// Median-of-medians, milliseconds.
    pub median_ms: f64,
    /// Median absolute deviation, milliseconds.
    pub mad_ms: f64,
    /// Repetitions behind the point.
    pub reps: usize,
}

/// One metric's row in the trend report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendRow {
    /// Record name or probe path.
    pub metric: String,
    /// Record or probe.
    pub kind: MetricKind,
    /// One point per history entry that measured this metric, in ledger
    /// order.
    pub points: Vec<TrendPoint>,
    /// Unicode sparkline of the medians (▁..█ over the row's min..max).
    pub sparkline: String,
    /// Verdict of the newest entry versus the one before it
    /// ([`Verdict::Inconclusive`] with fewer than two points).
    pub latest_verdict: Verdict,
    /// Median shift of the newest entry versus the previous, percent.
    pub latest_delta_pct: f64,
    /// Commit of the earliest entry whose comparison against its
    /// predecessor was a significant regression, if any.
    pub first_regressing_rev: Option<String>,
}

/// Whole-bench trend report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendReport {
    /// The bench the report covers.
    pub bench: String,
    /// History entries walked.
    pub entries: usize,
    /// Commit of each entry, in ledger order.
    pub revs: Vec<String>,
    /// One row per metric measured by the newest entry.
    pub rows: Vec<TrendRow>,
    /// Caveats (host constraints, excluded metrics) from the entries.
    pub notes: Vec<String>,
}

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a sparkline scaled to the slice's own min..max;
/// a flat series renders as all-middle glyphs.
pub fn sparkline(values: &[f64]) -> String {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() {
        return String::new();
    }
    if !(hi - lo).is_normal() {
        return SPARKS[3].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / (hi - lo) * (SPARKS.len() - 1) as f64).round() as usize;
            SPARKS[t.min(SPARKS.len() - 1)]
        })
        .collect()
}

/// Builds the trend report for one bench's history (entries must be in
/// ledger order, as [`super::store::HistoryStore::load_bench`] returns
/// them). Rows cover the metrics of the **newest** entry; consecutive
/// entry pairs are compared with [`compare_records`] to locate the first
/// regressing commit per metric.
pub fn trend_report(history: &[HistoryRecord], cfg: &SignificanceConfig) -> TrendReport {
    let Some(latest) = history.last() else {
        return TrendReport {
            bench: String::new(),
            entries: 0,
            revs: vec![],
            rows: vec![],
            notes: vec![],
        };
    };
    // Pairwise comparisons once, reused for every metric row.
    let pair_reports: Vec<_> =
        history.windows(2).map(|w| compare_records(&w[0], &w[1], cfg)).collect();

    let mut rows = Vec::new();
    for metric in &latest.metrics {
        let points: Vec<TrendPoint> = history
            .iter()
            .filter_map(|entry| {
                entry.metric(metric.kind, &metric.metric).map(|m| TrendPoint {
                    seq: entry.seq,
                    rev: entry.git_rev.clone(),
                    median_ms: m.median_ms,
                    mad_ms: m.mad_ms,
                    reps: entry.reps,
                })
            })
            .collect();
        let medians: Vec<f64> = points.iter().map(|p| p.median_ms).collect();
        let verdict_for = |report: &super::compare::ComparisonReport| {
            report
                .verdicts
                .iter()
                .find(|v| v.kind == metric.kind && v.metric == metric.metric)
                .map(|v| (v.verdict, v.delta_pct))
        };
        let first_regressing_rev = pair_reports
            .iter()
            .find(|r| verdict_for(r).is_some_and(|(v, _)| v == Verdict::Regression))
            .map(|r| r.new_rev.clone());
        let (latest_verdict, latest_delta_pct) =
            pair_reports.last().and_then(verdict_for).unwrap_or((Verdict::Inconclusive, 0.0));
        rows.push(TrendRow {
            metric: metric.metric.clone(),
            kind: metric.kind,
            sparkline: sparkline(&medians),
            points,
            latest_verdict,
            latest_delta_pct,
            first_regressing_rev,
        });
    }
    let mut notes = Vec::new();
    for entry in history {
        for note in &entry.notes {
            if !notes.contains(note) {
                notes.push(note.clone());
            }
        }
    }
    TrendReport {
        bench: latest.bench.clone(),
        entries: history.len(),
        revs: history.iter().map(|r| r.git_rev.clone()).collect(),
        rows,
        notes,
    }
}

impl TrendReport {
    /// Renders the report as a markdown document: one sparkline table row
    /// per metric with a `median ± MAD` dispersion band for the newest
    /// entry.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Performance trend — `{}`\n\n{} history entr{} across revs: {}\n\n\
             | metric | kind | trend | latest median ± MAD | Δ vs prev | verdict | first regression |\n\
             |---|---|---|---:|---:|---|---|\n",
            self.bench,
            self.entries,
            if self.entries == 1 { "y" } else { "ies" },
            self.revs.join(" → "),
        );
        for row in &self.rows {
            let (band, delta) = match row.points.last() {
                Some(p) => (
                    format!("{:.3} ± {:.3} ms", p.median_ms, p.mad_ms),
                    format!("{:+.1}%", row.latest_delta_pct),
                ),
                None => ("-".into(), "-".into()),
            };
            out.push_str(&format!(
                "| `{}` | {} | `{}` | {} | {} | {} | {} |\n",
                row.metric,
                row.kind.label(),
                row.sparkline,
                band,
                delta,
                row.latest_verdict.label(),
                row.first_regressing_rev.as_deref().unwrap_or("-"),
            ));
        }
        if !self.notes.is_empty() {
            out.push_str("\nNotes:\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Writes `TREND_<bench>.md` and `TREND_<bench>.json` into `dir`,
    /// returning both paths.
    ///
    /// # Errors
    ///
    /// Filesystem write failures.
    pub fn write(&self, dir: impl AsRef<Path>) -> std::io::Result<(PathBuf, PathBuf)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let md_path = dir.join(format!("TREND_{}.md", self.bench));
        std::fs::write(&md_path, self.to_markdown())?;
        let json_path = dir.join(format!("TREND_{}.json", self.bench));
        let json =
            serde_json::to_string_pretty(self).map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(&json_path, json + "\n")?;
        Ok((md_path, json_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::store::{fnv1a64_hex, MetricSeries, SCHEMA_VERSION};

    fn entry(rev: &str, seq: u64, scale: f64) -> HistoryRecord {
        let base = [100.0, 99.0, 101.0, 100.5, 99.5, 100.2];
        HistoryRecord {
            schema: SCHEMA_VERSION,
            seq,
            bench: "b".into(),
            params: "p".into(),
            params_hash: fnv1a64_hex("p"),
            git_rev: rev.into(),
            git_dirty: false,
            effort: "quick".into(),
            reps: base.len(),
            fingerprint: crate::timing::HostFingerprint::probe(),
            notes: vec![],
            metrics: vec![MetricSeries::from_samples(
                "e2e",
                MetricKind::Record,
                base.iter().map(|x| x * scale).collect(),
            )],
        }
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        let s = sparkline(&[1.0, 2.0, 3.0, 8.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }

    #[test]
    fn trend_locates_first_regressing_rev() {
        // Stable, stable, 30% regression, stable-at-new-level.
        let history = vec![
            entry("r1", 1, 1.0),
            entry("r2", 2, 1.005),
            entry("r3", 3, 1.3),
            entry("r4", 4, 1.302),
        ];
        let report = trend_report(&history, &SignificanceConfig::default());
        assert_eq!(report.entries, 4);
        let row = &report.rows[0];
        assert_eq!(row.points.len(), 4);
        assert_eq!(row.first_regressing_rev.as_deref(), Some("r3"), "{row:?}");
        assert_eq!(row.latest_verdict, Verdict::NoChange, "r4 vs r3 is flat: {row:?}");
        let md = report.to_markdown();
        assert!(md.contains("r1 → r2 → r3 → r4"), "{md}");
        assert!(md.contains("± "), "dispersion band rendered: {md}");
        assert!(md.contains("| r3 |"), "first regression column: {md}");
    }

    #[test]
    fn empty_history_renders_empty_report() {
        let report = trend_report(&[], &SignificanceConfig::default());
        assert_eq!(report.entries, 0);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn trend_report_round_trips_through_json() {
        let history = vec![entry("r1", 1, 1.0), entry("r2", 2, 1.1)];
        let report = trend_report(&history, &SignificanceConfig::default());
        let json = serde_json::to_string(&report).expect("serialize");
        let back: TrendReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, report);
    }
}
