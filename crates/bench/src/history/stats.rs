//! Statistics core for the performance-history pipeline.
//!
//! Everything here is dependency-free and pure: robust location/dispersion
//! estimators (median, median absolute deviation) for the "level 2"
//! per-repetition aggregation, and a Mann–Whitney U rank test (normal
//! approximation with tie correction and continuity correction) for the
//! "level 3" cross-commit deviation verdicts. A rank test is used instead
//! of a t-test because wall-clock samples on a shared 1-CPU host are
//! heavy-tailed: one scheduler preemption produces an outlier that would
//! wreck a mean/variance-based test but barely moves the ranks.

/// Median of a sample set: the mean of the two middle order statistics for
/// even `n`, the middle one for odd `n`. Empty input yields 0.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median absolute deviation: `median(|x_i - median(x)|)`. A robust
/// dispersion estimate — unlike the standard deviation, one outlier
/// repetition cannot inflate it. Empty input yields 0.
pub fn mad(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = median(samples);
    let devs: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Result of a two-sided Mann–Whitney U test between samples `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankTest {
    /// U statistic of sample `a`: the number of pairs `(a_i, b_j)` with
    /// `a_i > b_j`, counting ties as one half.
    pub u_a: f64,
    /// Normal-approximation z score (continuity-corrected, tie-corrected).
    pub z: f64,
    /// Two-sided p-value under the normal approximation. `1.0` when a
    /// sample is empty or every observation is tied.
    pub p_value: f64,
    /// Rank-biserial effect size `2·U_a/(n_a·n_b) − 1` in `[-1, 1]`:
    /// positive when `a` tends to be larger than `b`, 0 for total overlap.
    pub effect_r: f64,
}

/// Two-sided Mann–Whitney U test (a.k.a. Wilcoxon rank-sum) of `a` vs `b`.
///
/// Ranks the pooled samples with average ranks for ties, computes
/// `U_a = R_a − n_a(n_a+1)/2`, and evaluates significance via the normal
/// approximation with the standard tie-corrected variance
/// `n_a·n_b/12 · ((N+1) − Σ(t³−t)/(N(N−1)))` and a 0.5 continuity
/// correction toward the mean. Exactness caveats: the approximation is
/// conservative-ish below ~4 samples per side; the verdict layer
/// ([`classify`]) refuses to conclude anything there anyway.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> RankTest {
    let (na, nb) = (a.len(), b.len());
    if na == 0 || nb == 0 {
        return RankTest { u_a: 0.0, z: 0.0, p_value: 1.0, effect_r: 0.0 };
    }
    // Pool and rank: (value, came-from-a).
    let mut pooled: Vec<(f64, bool)> = a.iter().map(|&x| (x, true)).collect();
    pooled.extend(b.iter().map(|&x| (x, false)));
    pooled.sort_by(|x, y| f64::total_cmp(&x.0, &y.0));
    let n = pooled.len();

    let mut rank_sum_a = 0.0_f64;
    let mut tie_term = 0.0_f64; // Σ (t³ − t) over tie groups.
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i) as f64;
        // Average rank of the tie group [i, j): ranks are 1-based.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for p in &pooled[i..j] {
            if p.1 {
                rank_sum_a += avg_rank;
            }
        }
        tie_term += t * t * t - t;
        i = j;
    }

    let (naf, nbf, nf) = (na as f64, nb as f64, n as f64);
    let u_a = rank_sum_a - naf * (naf + 1.0) / 2.0;
    let effect_r = 2.0 * u_a / (naf * nbf) - 1.0;

    let mean_u = naf * nbf / 2.0;
    let variance = naf * nbf / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if variance <= 0.0 {
        // Every pooled observation tied: no evidence of any difference.
        return RankTest { u_a, z: 0.0, p_value: 1.0, effect_r };
    }
    // Continuity correction: shift U half a step toward the mean.
    let diff = u_a - mean_u;
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / variance.sqrt();
    let p_value = two_sided_p(z);
    RankTest { u_a, z, p_value, effect_r }
}

/// Two-sided normal-tail probability `P(|Z| ≥ |z|) = erfc(|z|/√2)`.
fn two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2).clamp(0.0, 1.0)
}

/// Complementary error function, rational Chebyshev approximation
/// (Numerical Recipes §6.2); absolute error < 1.2e-7 everywhere — far
/// below anything a p-value threshold can notice.
fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let poly = -x * x - 1.26551223
        + t * (1.00002368
            + t * (0.37409196
                + t * (0.09678418
                    + t * (-0.18628806
                        + t * (0.27886807
                            + t * (-1.13520398
                                + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277))))))));
    let ans = t * poly.exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Knobs for [`classify`]. [`SignificanceConfig::default`] gives
/// `alpha = 0.05`, `min_effect = 0.05` (5 % median shift), and
/// `min_samples = 4` repetitions per side — the smallest `n` where the
/// rank test can reach `p < 0.05` at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceConfig {
    /// Two-sided significance level.
    pub alpha: f64,
    /// Practical-effect floor: median shifts smaller than this fraction
    /// are reported [`Verdict::NoChange`] even when statistically
    /// detectable (a significant 0.3 % shift is not a regression worth a
    /// bisect).
    pub min_effect: f64,
    /// Minimum repetitions per side before any verdict besides
    /// [`Verdict::Inconclusive`] is possible.
    pub min_samples: usize,
}

impl Default for SignificanceConfig {
    fn default() -> Self {
        Self { alpha: 0.05, min_effect: 0.05, min_samples: 4 }
    }
}

/// Typed outcome of comparing one metric's repetition samples across two
/// commits. Replaces the raw-tolerance guesswork of the single-baseline
/// gate: a verdict requires both statistical significance *and* a
/// practically meaningful median shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// Significantly slower by at least `min_effect`.
    Regression,
    /// Significantly faster by at least `min_effect`.
    Improvement,
    /// No evidence of a practically meaningful shift.
    NoChange,
    /// Cannot conclude: too few repetitions, a non-positive baseline, or
    /// a large-but-not-significant shift (noise swamped the signal).
    Inconclusive,
}

impl Verdict {
    /// Stable lowercase label (used as JSON summary keys and in tables).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::NoChange => "no-change",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// A classified comparison of one metric across two commits.
#[derive(Debug, Clone, PartialEq)]
pub struct Judgment {
    /// The verdict (see [`Verdict`] semantics).
    pub verdict: Verdict,
    /// Two-sided p-value of the rank test.
    pub p_value: f64,
    /// Rank-biserial effect size (positive = new sample tends larger).
    pub effect_r: f64,
    /// Median of the old samples.
    pub median_old: f64,
    /// Median of the new samples.
    pub median_new: f64,
    /// Fractional median shift `(new − old) / old` (0 when `old ≤ 0`).
    pub delta: f64,
    /// One-line human explanation of how the verdict was reached.
    pub reason: String,
}

/// Classifies `new` versus `old` repetition samples of a lower-is-better
/// metric (milliseconds).
///
/// Decision rule:
/// 1. fewer than `min_samples` on either side → [`Verdict::Inconclusive`];
/// 2. non-positive old median → [`Verdict::Inconclusive`] (nothing to be
///    relative to);
/// 3. rank test significant (`p < alpha`) and `|delta| ≥ min_effect` →
///    [`Verdict::Regression`] / [`Verdict::Improvement`] by sign;
/// 4. significant but `|delta| < min_effect` → [`Verdict::NoChange`]
///    (detectable, not meaningful);
/// 5. not significant but `|delta| ≥ min_effect` →
///    [`Verdict::Inconclusive`] (could be real, could be noise — rerun
///    with more repetitions);
/// 6. otherwise [`Verdict::NoChange`].
pub fn classify(old: &[f64], new: &[f64], cfg: &SignificanceConfig) -> Judgment {
    let median_old = median(old);
    let median_new = median(new);
    let delta = if median_old > 0.0 { (median_new - median_old) / median_old } else { 0.0 };
    let test = mann_whitney_u(new, old);
    let base = Judgment {
        verdict: Verdict::Inconclusive,
        p_value: test.p_value,
        effect_r: test.effect_r,
        median_old,
        median_new,
        delta,
        reason: String::new(),
    };
    if old.len() < cfg.min_samples || new.len() < cfg.min_samples {
        return Judgment {
            reason: format!(
                "{} vs {} repetitions; need ≥{} per side for a verdict",
                old.len(),
                new.len(),
                cfg.min_samples
            ),
            ..base
        };
    }
    if median_old <= 0.0 {
        return Judgment { reason: "non-positive baseline median".into(), ..base };
    }
    let significant = test.p_value < cfg.alpha;
    let meaningful = delta.abs() >= cfg.min_effect;
    let (verdict, reason) = match (significant, meaningful) {
        (true, true) if delta > 0.0 => (
            Verdict::Regression,
            format!(
                "median {:+.1}% (p={:.4} < α={}, effect r={:+.2})",
                100.0 * delta,
                test.p_value,
                cfg.alpha,
                test.effect_r
            ),
        ),
        (true, true) => (
            Verdict::Improvement,
            format!(
                "median {:+.1}% (p={:.4} < α={}, effect r={:+.2})",
                100.0 * delta,
                test.p_value,
                cfg.alpha,
                test.effect_r
            ),
        ),
        (true, false) => (
            Verdict::NoChange,
            format!(
                "significant (p={:.4}) but |{:+.1}%| below the {:.0}% effect floor",
                test.p_value,
                100.0 * delta,
                100.0 * cfg.min_effect
            ),
        ),
        (false, true) => (
            Verdict::Inconclusive,
            format!(
                "median {:+.1}% but not significant (p={:.4} ≥ α={}); rerun with more repetitions",
                100.0 * delta,
                test.p_value,
                cfg.alpha
            ),
        ),
        (false, false) => (
            Verdict::NoChange,
            format!("p={:.4}, median {:+.1}%: indistinguishable", test.p_value, 100.0 * delta),
        ),
    };
    Judgment { verdict, reason, ..base }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_hand_fixtures() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5, "order must not matter");
    }

    #[test]
    fn mad_hand_fixtures() {
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(mad(&[5.0]), 0.0);
        // median = 3, |devs| = [2, 1, 0, 1, 97] -> median 1: the outlier
        // does not inflate the estimate.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), 1.0);
        assert_eq!(mad(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn mann_whitney_fully_separated_hand_fixture() {
        // a = [1,2,3] all below b = [4,5,6]: rank-sum(a) = 1+2+3 = 6,
        // U_a = 6 - 3·4/2 = 0, mean 4.5, var = 9·7/12 = 5.25,
        // z = (0 - 4.5 + 0.5)/√5.25 = -1.74574,
        // p = erfc(1.74574/√2) ≈ 0.08086.
        let t = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(t.u_a, 0.0);
        assert_eq!(t.effect_r, -1.0);
        assert!((t.z - -1.74574).abs() < 1e-4, "z={}", t.z);
        assert!((t.p_value - 0.08086).abs() < 5e-4, "p={}", t.p_value);
    }

    #[test]
    fn mann_whitney_tie_corrected_hand_fixture() {
        // a = [1,1,2], b = [1,2,2]. Pooled sorted: 1,1,1 (avg rank 2) and
        // 2,2,2 (avg rank 5). rank-sum(a) = 2+2+5 = 9, U_a = 9 - 6 = 3.
        // Ties: two groups of 3, Σ(t³−t) = 48.
        // var = (9/12)·(7 − 48/30) = 4.05, z = (3 − 4.5 + 0.5)/√4.05 =
        // -0.49690, p ≈ 0.61928.
        let t = mann_whitney_u(&[1.0, 1.0, 2.0], &[1.0, 2.0, 2.0]);
        assert_eq!(t.u_a, 3.0);
        assert!((t.z - -0.49690).abs() < 1e-4, "z={}", t.z);
        assert!((t.p_value - 0.61928).abs() < 5e-4, "p={}", t.p_value);
        assert!((t.effect_r - (2.0 * 3.0 / 9.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mann_whitney_degenerate_inputs() {
        assert_eq!(mann_whitney_u(&[], &[1.0]).p_value, 1.0);
        assert_eq!(mann_whitney_u(&[1.0], &[]).p_value, 1.0);
        let all_tied = mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(all_tied.p_value, 1.0, "zero variance must not divide by zero");
        assert_eq!(all_tied.effect_r, 0.0);
    }

    #[test]
    fn erfc_reference_points() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(-1) ≈ 1.842701.
        assert!((erfc(0.0) - 1.0).abs() < 2e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn classify_flags_a_clean_30_percent_slowdown() {
        let old = [100.0, 99.0, 101.0, 100.5, 99.5, 100.2];
        let new: Vec<f64> = old.iter().map(|x| x * 1.30).collect();
        let j = classify(&old, &new, &SignificanceConfig::default());
        assert_eq!(j.verdict, Verdict::Regression, "{j:?}");
        assert!(j.p_value < 0.01, "{j:?}");
        assert!((j.delta - 0.30).abs() < 1e-9, "{j:?}");
        // And the mirrored comparison is an improvement of the same weight.
        let back = classify(&new, &old, &SignificanceConfig::default());
        assert_eq!(back.verdict, Verdict::Improvement, "{back:?}");
        assert!((back.p_value - j.p_value).abs() < 1e-12);
    }

    #[test]
    fn classify_ignores_two_percent_jitter() {
        let old = [100.0, 99.0, 101.0, 100.5, 99.5, 100.2];
        let new = [102.0, 100.9, 103.0, 102.6, 101.4, 102.3]; // ~+2%
        let j = classify(&old, &new, &SignificanceConfig::default());
        assert_eq!(j.verdict, Verdict::NoChange, "{j:?}");
        assert!(j.delta.abs() < 0.05, "{j:?}");
    }

    #[test]
    fn classify_identical_samples_is_no_change() {
        let s = [10.0, 11.0, 9.5, 10.2, 10.8];
        let j = classify(&s, &s, &SignificanceConfig::default());
        assert_eq!(j.verdict, Verdict::NoChange, "{j:?}");
        assert_eq!(j.p_value, 1.0);
    }

    #[test]
    fn classify_underpowered_is_inconclusive() {
        let j = classify(
            &[100.0, 100.0, 100.0],
            &[200.0, 200.0, 200.0],
            &SignificanceConfig::default(),
        );
        assert_eq!(j.verdict, Verdict::Inconclusive, "{j:?}");
        assert!(j.reason.contains("repetitions"), "{j:?}");
    }

    #[test]
    fn classify_large_but_noisy_shift_is_inconclusive() {
        // Heavily overlapping samples whose medians differ by >5%: the
        // rank test cannot separate them, so no regression is charged.
        let old = [100.0, 140.0, 90.0, 120.0, 95.0, 130.0];
        let new = [110.0, 95.0, 145.0, 125.0, 100.0, 135.0];
        let j = classify(&old, &new, &SignificanceConfig::default());
        assert_eq!(j.verdict, Verdict::Inconclusive, "{j:?}");
        assert!(j.p_value >= 0.05, "{j:?}");
    }
}
