//! Cross-commit comparator: distribution-level significance verdicts.
//!
//! Given two [`HistoryRecord`]s, every metric present in both gets a
//! Mann–Whitney U rank test over its repetition samples and a typed
//! [`Verdict`] with effect size — replacing the old single-baseline
//! "25 % slower fails" guess with an actual statistical statement.

use super::stats::{classify, Judgment, SignificanceConfig, Verdict};
use super::store::{HistoryRecord, MetricKind};
use crate::timing::PROBE_GATE_FLOOR_MS;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One metric's cross-commit verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricVerdict {
    /// Record name or probe path.
    pub metric: String,
    /// Record or probe.
    pub kind: MetricKind,
    /// The typed outcome.
    pub verdict: Verdict,
    /// Two-sided rank-test p-value.
    pub p_value: f64,
    /// Rank-biserial effect size (positive = new is slower).
    pub effect_r: f64,
    /// Old median-of-medians, milliseconds.
    pub median_old_ms: f64,
    /// New median-of-medians, milliseconds.
    pub median_new_ms: f64,
    /// Median shift in percent (`+` = slower).
    pub delta_pct: f64,
    /// How the verdict was reached, one line.
    pub reason: String,
}

/// Comparison of two history entries of one bench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// The bench both entries belong to.
    pub bench: String,
    /// Older entry's commit.
    pub old_rev: String,
    /// Newer entry's commit.
    pub new_rev: String,
    /// Older entry's ledger sequence number.
    pub old_seq: u64,
    /// Newer entry's ledger sequence number.
    pub new_seq: u64,
    /// Repetition counts `(old, new)`.
    pub reps: (usize, usize),
    /// Per-metric verdicts, records first, then probes.
    pub verdicts: Vec<MetricVerdict>,
    /// Verdict-label → count summary (plus `unmatched` for metrics
    /// present on only one side).
    pub summary: BTreeMap<String, usize>,
}

impl ComparisonReport {
    /// The verdicts that are regressions.
    pub fn regressions(&self) -> Vec<&MetricVerdict> {
        self.verdicts.iter().filter(|v| v.verdict == Verdict::Regression).collect()
    }

    /// Renders the comparison as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {}: {} (seq {}) → {} (seq {}), {}×{} reps\n\n\
             | metric | kind | old median | new median | Δ | p | effect r | verdict |\n\
             |---|---|---:|---:|---:|---:|---:|---|\n",
            self.bench,
            self.old_rev,
            self.old_seq,
            self.new_rev,
            self.new_seq,
            self.reps.0,
            self.reps.1
        );
        for v in &self.verdicts {
            out.push_str(&format!(
                "| `{}` | {} | {:.3} ms | {:.3} ms | {:+.1}% | {:.4} | {:+.2} | **{}** |\n",
                v.metric,
                v.kind.label(),
                v.median_old_ms,
                v.median_new_ms,
                v.delta_pct,
                v.p_value,
                v.effect_r,
                v.verdict.label()
            ));
        }
        out.push('\n');
        let counts: Vec<String> = self.summary.iter().map(|(k, n)| format!("{n} {k}")).collect();
        out.push_str(&format!("Summary: {}.\n", counts.join(", ")));
        out
    }
}

/// Compares `new` against `old`, metric by metric.
///
/// Probe metrics whose medians sit below the sub-50 µs jitter floor on
/// both sides are reported [`Verdict::Inconclusive`] rather than tested:
/// at that scale scheduler noise on a 1-CPU host swamps any real signal
/// (same floor the single-baseline gate uses).
pub fn compare_records(
    old: &HistoryRecord,
    new: &HistoryRecord,
    cfg: &SignificanceConfig,
) -> ComparisonReport {
    let mut verdicts = Vec::new();
    let mut summary: BTreeMap<String, usize> = BTreeMap::new();
    for new_metric in &new.metrics {
        let Some(old_metric) = old.metric(new_metric.kind, &new_metric.metric) else {
            *summary.entry("unmatched".into()).or_insert(0) += 1;
            continue;
        };
        let judgment: Judgment = if new_metric.kind == MetricKind::Probe
            && old_metric.median_ms < PROBE_GATE_FLOOR_MS
            && new_metric.median_ms < PROBE_GATE_FLOOR_MS
        {
            let base = classify(&old_metric.samples, &new_metric.samples, cfg);
            Judgment {
                verdict: Verdict::Inconclusive,
                reason: format!(
                    "medians below the {:.0} µs jitter floor; scheduler noise dominates",
                    PROBE_GATE_FLOOR_MS * 1e3
                ),
                ..base
            }
        } else {
            classify(&old_metric.samples, &new_metric.samples, cfg)
        };
        *summary.entry(judgment.verdict.label().into()).or_insert(0) += 1;
        verdicts.push(MetricVerdict {
            metric: new_metric.metric.clone(),
            kind: new_metric.kind,
            verdict: judgment.verdict,
            p_value: judgment.p_value,
            effect_r: judgment.effect_r,
            median_old_ms: judgment.median_old,
            median_new_ms: judgment.median_new,
            delta_pct: 100.0 * judgment.delta,
            reason: judgment.reason,
        });
    }
    for old_metric in &old.metrics {
        if new.metric(old_metric.kind, &old_metric.metric).is_none() {
            *summary.entry("unmatched".into()).or_insert(0) += 1;
        }
    }
    ComparisonReport {
        bench: new.bench.clone(),
        old_rev: old.git_rev.clone(),
        new_rev: new.git_rev.clone(),
        old_seq: old.seq,
        new_seq: new.seq,
        reps: (old.reps, new.reps),
        verdicts,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::store::{fnv1a64_hex, MetricSeries, SCHEMA_VERSION};

    fn entry(rev: &str, seq: u64, metrics: Vec<MetricSeries>) -> HistoryRecord {
        HistoryRecord {
            schema: SCHEMA_VERSION,
            seq,
            bench: "b".into(),
            params: "p".into(),
            params_hash: fnv1a64_hex("p"),
            git_rev: rev.into(),
            git_dirty: false,
            effort: "quick".into(),
            reps: 6,
            fingerprint: crate::timing::HostFingerprint::probe(),
            notes: vec![],
            metrics,
        }
    }

    fn series(name: &str, kind: MetricKind, scale: f64) -> MetricSeries {
        let base = [100.0, 99.0, 101.0, 100.5, 99.5, 100.2];
        MetricSeries::from_samples(name, kind, base.iter().map(|x| x * scale).collect())
    }

    #[test]
    fn comparator_separates_regression_from_jitter() {
        let old = entry(
            "aaa",
            1,
            vec![
                series("slowed", MetricKind::Record, 1.0),
                series("jittery", MetricKind::Record, 1.0),
            ],
        );
        let new = entry(
            "bbb",
            2,
            vec![
                series("slowed", MetricKind::Record, 1.30),
                series("jittery", MetricKind::Record, 1.02),
            ],
        );
        let report = compare_records(&old, &new, &SignificanceConfig::default());
        let by_name =
            |n: &str| report.verdicts.iter().find(|v| v.metric == n).expect("verdict present");
        assert_eq!(by_name("slowed").verdict, Verdict::Regression, "{report:?}");
        assert_eq!(by_name("jittery").verdict, Verdict::NoChange, "{report:?}");
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.summary.get("regression"), Some(&1));
        let md = report.to_markdown();
        assert!(md.contains("**regression**") && md.contains("**no-change**"), "{md}");
    }

    #[test]
    fn sub_jitter_floor_probes_are_inconclusive() {
        // 1 µs probe medians: even a 10x shift is below the 50 µs floor.
        let old = entry("aaa", 1, vec![series("core.tiny", MetricKind::Probe, 0.00001)]);
        let new = entry("bbb", 2, vec![series("core.tiny", MetricKind::Probe, 0.0001)]);
        let report = compare_records(&old, &new, &SignificanceConfig::default());
        assert_eq!(report.verdicts[0].verdict, Verdict::Inconclusive, "{report:?}");
        assert!(report.verdicts[0].reason.contains("jitter floor"), "{report:?}");
    }

    #[test]
    fn unmatched_metrics_are_counted_not_judged() {
        let old = entry("aaa", 1, vec![series("gone", MetricKind::Record, 1.0)]);
        let new = entry("bbb", 2, vec![series("added", MetricKind::Record, 1.0)]);
        let report = compare_records(&old, &new, &SignificanceConfig::default());
        assert!(report.verdicts.is_empty());
        assert_eq!(report.summary.get("unmatched"), Some(&2));
    }
}
