//! Append-only on-disk store of repetition-aggregated benchmark records.
//!
//! Layout: `BENCH_HISTORY/<bench>/<seq>-<rev>-<params_hash>.json`, one
//! self-contained [`HistoryRecord`] per file. Files are never rewritten:
//! appending assigns the next sequence number and refuses to clobber an
//! existing path, so the directory is a usable git-trackable ledger and a
//! crashed writer can never corrupt prior history.

use crate::timing::HostFingerprint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Schema version stamped into every record so future layout changes can
/// keep loading old ledgers.
pub const SCHEMA_VERSION: u32 = 1;

/// What a metric series measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// An end-to-end timed workload (a `BenchRecord`).
    Record,
    /// An `lts-obs` call-path probe (per-repetition p50).
    Probe,
}

impl MetricKind {
    /// Stable lowercase label for tables and summaries.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Record => "record",
            MetricKind::Probe => "probe",
        }
    }
}

/// One metric's repetition samples plus their level-2 aggregation:
/// the median across per-repetition medians (median-of-medians) and a
/// robust dispersion estimate. Raw samples are retained because the
/// comparator's rank test needs the distributions, not just summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Record name or `;`-joined probe path.
    pub metric: String,
    /// Whether this is a wall-clock record or a call-path probe.
    pub kind: MetricKind,
    /// One sample per repetition: the repetition's median (records) or
    /// p50 (probes), milliseconds.
    pub samples: Vec<f64>,
    /// Median of `samples` — the median-of-medians location estimate.
    pub median_ms: f64,
    /// Median absolute deviation of `samples`.
    pub mad_ms: f64,
    /// Smallest sample.
    pub min_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl MetricSeries {
    /// Builds a series from per-repetition samples, computing the
    /// median-of-medians and MAD/min/max dispersion.
    pub fn from_samples(metric: impl Into<String>, kind: MetricKind, samples: Vec<f64>) -> Self {
        let median_ms = super::stats::median(&samples);
        let mad_ms = super::stats::mad(&samples);
        let min_ms = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max_ms = samples.iter().copied().fold(0.0, f64::max);
        Self {
            metric: metric.into(),
            kind,
            samples,
            median_ms,
            mad_ms,
            min_ms: if min_ms.is_finite() { min_ms } else { 0.0 },
            max_ms,
        }
    }
}

/// One append-only history entry: everything needed to compare this
/// (commit, bench, params, host) cell against any other without consulting
/// external state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Record layout version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Ledger sequence number within the bench, assigned at append time
    /// (1-based, strictly increasing).
    pub seq: u64,
    /// Benchmark name (one ledger subdirectory per bench).
    pub bench: String,
    /// Canonical parameter string (effort tier, iteration caps, thread
    /// count, …) — anything that changes what was measured.
    pub params: String,
    /// FNV-1a-64 of `params`, hex — the filename key, so differently
    /// parameterized runs of one bench never look comparable.
    pub params_hash: String,
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// Whether the working tree had uncommitted changes. Dirty records
    /// are refused by [`HistoryStore::append`] unless explicitly allowed,
    /// because a dirty tree makes `git_rev` a lie.
    pub git_dirty: bool,
    /// Effort preset label the run used (`quick`/`paper`).
    pub effort: String,
    /// Number of repetitions aggregated into each series.
    pub reps: usize,
    /// Full host provenance (rustc, OS, CPU count via the report).
    pub fingerprint: HostFingerprint,
    /// Free-form caveats carried over from the repetition reports.
    pub notes: Vec<String>,
    /// One series per record and per probe path.
    pub metrics: Vec<MetricSeries>,
}

impl HistoryRecord {
    /// The series for `metric`, if this record measured it.
    pub fn metric(&self, kind: MetricKind, name: &str) -> Option<&MetricSeries> {
        self.metrics.iter().find(|m| m.kind == kind && m.metric == name)
    }
}

/// Typed failure of a history-store operation.
#[derive(Debug)]
pub enum HistoryError {
    /// The working tree had uncommitted changes and
    /// `LTS_BENCH_ALLOW_DIRTY=1` was not set: recording would attribute
    /// unknown code to `git_rev`.
    DirtyTree {
        /// The rev the dirty tree sits on.
        rev: String,
    },
    /// An underlying filesystem failure.
    Io(std::io::Error),
    /// A ledger file exists but does not parse as a [`HistoryRecord`].
    Corrupt {
        /// Path of the unreadable entry.
        path: PathBuf,
        /// Parser diagnostic.
        detail: String,
    },
    /// An operation needed more history than the ledger holds.
    NotEnoughHistory {
        /// The bench whose ledger was consulted.
        bench: String,
        /// Entries actually present.
        have: usize,
        /// Entries the operation needed.
        need: usize,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::DirtyTree { rev } => write!(
                f,
                "refusing to record history on a dirty tree at {rev}: commit first, or set \
                 LTS_BENCH_ALLOW_DIRTY=1 to record anyway"
            ),
            HistoryError::Io(e) => write!(f, "history store I/O: {e}"),
            HistoryError::Corrupt { path, detail } => {
                write!(f, "corrupt history entry {}: {detail}", path.display())
            }
            HistoryError::NotEnoughHistory { bench, have, need } => {
                write!(f, "bench `{bench}` has {have} history entr(ies); need {need}")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<std::io::Error> for HistoryError {
    fn from(e: std::io::Error) -> Self {
        HistoryError::Io(e)
    }
}

/// FNV-1a-64 hex digest (the same hash family the simcache uses; cheap,
/// deterministic, no new dependencies).
pub fn fnv1a64_hex(data: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Whether `LTS_BENCH_ALLOW_DIRTY` permits recording dirty-tree runs.
pub fn allow_dirty_from_env() -> bool {
    std::env::var("LTS_BENCH_ALLOW_DIRTY").is_ok_and(|v| v != "0")
}

/// Root directory of the history ledger: `LTS_BENCH_HISTORY_DIR` when
/// set, else `BENCH_HISTORY/` under `LTS_BENCH_DIR` (default `.`).
pub fn history_root_from_env() -> PathBuf {
    if let Ok(dir) = std::env::var("LTS_BENCH_HISTORY_DIR") {
        return PathBuf::from(dir);
    }
    let base = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    Path::new(&base).join("BENCH_HISTORY")
}

/// Handle on one `BENCH_HISTORY/` directory.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    root: PathBuf,
}

impl HistoryStore {
    /// Opens (creating if needed) the ledger rooted at `root`.
    ///
    /// # Errors
    ///
    /// Directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, HistoryError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Opens the ledger at the environment-selected root (see
    /// [`history_root_from_env`]).
    ///
    /// # Errors
    ///
    /// Directory-creation failures.
    pub fn open_from_env() -> Result<Self, HistoryError> {
        Self::open(history_root_from_env())
    }

    /// The ledger root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Appends `record`, assigning the next sequence number for its bench
    /// and returning the written path. Never overwrites: an existing file
    /// at the computed path is an error, keeping the ledger append-only.
    ///
    /// # Errors
    ///
    /// [`HistoryError::DirtyTree`] when `record.git_dirty` and
    /// `allow_dirty` is false; I/O and serialization failures otherwise.
    pub fn append(
        &self,
        mut record: HistoryRecord,
        allow_dirty: bool,
    ) -> Result<PathBuf, HistoryError> {
        if record.git_dirty && !allow_dirty {
            return Err(HistoryError::DirtyTree { rev: record.git_rev });
        }
        let dir = self.root.join(sanitize(&record.bench));
        std::fs::create_dir_all(&dir)?;
        let next_seq = self
            .load_bench(&record.bench)?
            .iter()
            .map(|r| r.seq)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        record.seq = next_seq;
        let name = format!(
            "{:06}-{}-{}.json",
            record.seq,
            sanitize(&record.git_rev),
            &record.params_hash[..record.params_hash.len().min(8)]
        );
        let path = dir.join(name);
        if path.exists() {
            return Err(HistoryError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already exists; the ledger is append-only", path.display()),
            )));
        }
        let json = serde_json::to_string_pretty(&record)
            .map_err(|e| HistoryError::Io(std::io::Error::other(e.to_string())))?;
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }

    /// Loads every entry for `bench`, sorted by sequence number.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`HistoryError::Corrupt`] naming the first
    /// unparsable entry (a truncated write must not silently vanish).
    pub fn load_bench(&self, bench: &str) -> Result<Vec<HistoryRecord>, HistoryError> {
        let dir = self.root.join(sanitize(bench));
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let json = std::fs::read_to_string(&path)?;
            let record: HistoryRecord = serde_json::from_str(&json)
                .map_err(|e| HistoryError::Corrupt { path: path.clone(), detail: e.to_string() })?;
            out.push(record);
        }
        out.sort_by_key(|r| r.seq);
        Ok(out)
    }

    /// Bench names with at least one ledger entry, sorted.
    ///
    /// # Errors
    ///
    /// Directory-listing failures.
    pub fn benches(&self) -> Result<Vec<String>, HistoryError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The last two entries for `bench` as `(previous, latest)` — the
    /// default comparison pair.
    ///
    /// # Errors
    ///
    /// [`HistoryError::NotEnoughHistory`] with fewer than two entries.
    pub fn latest_pair(&self, bench: &str) -> Result<(HistoryRecord, HistoryRecord), HistoryError> {
        let mut all = self.load_bench(bench)?;
        if all.len() < 2 {
            return Err(HistoryError::NotEnoughHistory {
                bench: bench.into(),
                have: all.len(),
                need: 2,
            });
        }
        let latest = all.pop().unwrap_or_else(|| unreachable!("len checked above"));
        let previous = all.pop().unwrap_or_else(|| unreachable!("len checked above"));
        Ok((previous, latest))
    }

    /// The latest entry recorded for `rev` under `bench` (re-measurements
    /// of one commit supersede older entries for comparison purposes).
    ///
    /// # Errors
    ///
    /// [`HistoryError::NotEnoughHistory`] when `rev` never recorded.
    pub fn latest_for_rev(&self, bench: &str, rev: &str) -> Result<HistoryRecord, HistoryError> {
        self.load_bench(bench)?
            .into_iter()
            .rfind(|r| r.git_rev == rev)
            .ok_or_else(|| HistoryError::NotEnoughHistory { bench: bench.into(), have: 0, need: 1 })
    }
}

/// Filename-safe projection of a rev or bench name.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lts-history-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(bench: &str, rev: &str, dirty: bool, median: f64) -> HistoryRecord {
        HistoryRecord {
            schema: SCHEMA_VERSION,
            seq: 0,
            bench: bench.into(),
            params: "effort=quick".into(),
            params_hash: fnv1a64_hex("effort=quick"),
            git_rev: rev.into(),
            git_dirty: dirty,
            effort: "quick".into(),
            reps: 4,
            fingerprint: crate::timing::HostFingerprint::probe(),
            notes: vec![],
            metrics: vec![MetricSeries::from_samples(
                "e2e",
                MetricKind::Record,
                vec![median, median * 1.01, median * 0.99, median],
            )],
        }
    }

    #[test]
    fn append_assigns_sequence_and_load_sorts() {
        let store = HistoryStore::open(temp_root("seq")).expect("open");
        store.append(record("b", "aaa1111", false, 10.0), false).expect("append 1");
        store.append(record("b", "bbb2222", false, 11.0), false).expect("append 2");
        let all = store.load_bench("b").expect("load");
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].seq, all[0].git_rev.as_str()), (1, "aaa1111"));
        assert_eq!((all[1].seq, all[1].git_rev.as_str()), (2, "bbb2222"));
        let (prev, latest) = store.latest_pair("b").expect("pair");
        assert_eq!((prev.seq, latest.seq), (1, 2));
    }

    #[test]
    fn dirty_tree_is_refused_unless_allowed() {
        let store = HistoryStore::open(temp_root("dirty")).expect("open");
        let err = store.append(record("b", "ccc3333", true, 10.0), false).expect_err("refused");
        assert!(matches!(err, HistoryError::DirtyTree { ref rev } if rev == "ccc3333"), "{err}");
        assert!(err.to_string().contains("LTS_BENCH_ALLOW_DIRTY"), "{err}");
        store.append(record("b", "ccc3333", true, 10.0), true).expect("allowed explicitly");
        assert_eq!(store.load_bench("b").expect("load").len(), 1);
    }

    #[test]
    fn corrupt_entries_are_typed_not_skipped() {
        let root = temp_root("corrupt");
        let store = HistoryStore::open(&root).expect("open");
        store.append(record("b", "ddd4444", false, 10.0), false).expect("append");
        std::fs::write(root.join("b").join("000002-x-deadbeef.json"), "{ not json")
            .expect("plant corrupt file");
        let err = store.load_bench("b").expect_err("must surface corruption");
        assert!(matches!(err, HistoryError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn missing_bench_is_empty_and_latest_pair_is_typed() {
        let store = HistoryStore::open(temp_root("missing")).expect("open");
        assert!(store.load_bench("nope").expect("empty").is_empty());
        let err = store.latest_pair("nope").expect_err("not enough");
        assert!(matches!(err, HistoryError::NotEnoughHistory { have: 0, need: 2, .. }), "{err}");
    }

    #[test]
    fn records_round_trip_through_json() {
        let rec = record("rt", "eee5555", false, 3.5);
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: HistoryRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.bench, "rt");
        assert_eq!(back.metrics[0].kind, MetricKind::Record);
        assert_eq!(back.metrics[0].samples.len(), 4);
        assert_eq!(back.metrics[0].median_ms, rec.metrics[0].median_ms);
    }

    #[test]
    fn metric_series_aggregates_median_of_medians_and_mad() {
        let s =
            MetricSeries::from_samples("m", MetricKind::Probe, vec![10.0, 12.0, 11.0, 100.0, 10.5]);
        assert_eq!(s.median_ms, 11.0, "median-of-medians shrugs off the outlier rep");
        // devs from 11: [1, 1, 0, 89, 0.5] -> sorted median 1.
        assert_eq!(s.mad_ms, 1.0);
        assert_eq!((s.min_ms, s.max_ms), (10.0, 100.0));
    }

    #[test]
    fn fnv_hash_is_stable() {
        assert_eq!(fnv1a64_hex(""), "cbf29ce484222325");
        assert_ne!(fnv1a64_hex("a"), fnv1a64_hex("b"));
    }
}
