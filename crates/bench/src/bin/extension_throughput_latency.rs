//! **Extension experiment**: the §I throughput-vs-latency distinction.
//! Data-level parallelism (one independent inference per core, the
//! DaDianNao/TPU service model) maximizes throughput but does nothing for
//! single-inference latency; the paper's model parallelism trades some
//! aggregate throughput for much lower latency — the QoS metric embedded
//! systems care about.
//!
//! Analytic + simulation, no training. Run:
//! `cargo run --release -p lts-bench --bin extension_throughput_latency`.

use lts_bench::banner;
use lts_core::experiment::{parallelism_tradeoff, EffortPreset};
use lts_nn::descriptor::{alexnet_spec, lenet_spec};

fn main() {
    banner("Extension — data vs model parallelism (16 cores)", &EffortPreset::paper());
    for spec in [lenet_spec(), alexnet_spec()] {
        println!("{}:", spec.name);
        let rows = parallelism_tradeoff(&spec, 16).expect("tradeoff experiment");
        for r in &rows {
            println!(
                "  {:<22} latency {:>9} cycles   throughput {:>8.2} inf/Mcycle",
                r.mode, r.latency_cycles, r.throughput_per_mcycle
            );
        }
        let latency_gain = rows[0].latency_cycles as f64 / rows[1].latency_cycles as f64;
        let throughput_cost = rows[0].throughput_per_mcycle / rows[1].throughput_per_mcycle;
        println!(
            "  -> model parallelism answers {latency_gain:.1}x sooner at {throughput_cost:.1}x lower peak throughput\n"
        );
    }
    println!("This is why the paper's communication optimizations matter: they close");
    println!("the throughput gap of model parallelism without giving up its latency.");
}
