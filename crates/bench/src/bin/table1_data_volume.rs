//! Regenerates **Table I**: data volume to transmit in the NoC after layer
//! partitioning and parallelization (16 cores, traditional scheme).
//!
//! Analytic — no training. Run: `cargo run --release -p lts-bench --bin
//! table1_data_volume`.

use lts_bench::banner;
use lts_core::experiment::{table1_rows, EffortPreset};
use lts_core::report::render_table1;
use lts_partition::comm::format_bytes;

fn main() {
    banner("Table I — data moving volume (traditional, 16 cores)", &EffortPreset::paper());
    let rows = table1_rows(16).expect("analytic table construction cannot fail on valid specs");
    println!("{}", render_table1(&rows));
    println!();
    println!("Paper values (bytes, for comparison; formula documented in EXPERIMENTS.md):");
    println!("  MLP      Ip1 28K  Ip2/3 17K");
    println!("  LeNet    Conv2 225K  Ip1 57K  Ip2/3 29K");
    println!("  ConvNet  Conv2 450K  Conv3 113K  Ip1 57K");
    println!("  AlexNet  Conv2 2M  Conv3 2.4M  Conv4 1.8M  Conv5 1.8M  Ip1 450K  Ip2/3 57K");
    println!("  VGG19    Conv2 42M  Conv3 22M  Conv4 11M  Conv5 5.4M  Ip1 1.4M  Ip2/3 57K");
    println!();
    let alexnet = rows.iter().find(|r| r.network == "AlexNet").expect("AlexNet row");
    println!(
        "Cross-check: our AlexNet conv2 = {} (paper: 2M), conv4 = {} (paper: 1.8M)",
        format_bytes(alexnet.layer("conv2").unwrap_or(0)),
        format_bytes(alexnet.layer("conv4").unwrap_or(0)),
    );
}
