//! Regenerates **Table IV**: communication-aware sparsified
//! parallelization of MLP, LeNet, ConvNet and CaffeNet on 16 cores
//! (accuracy, NoC traffic rate, system speedup, energy reduction for
//! Baseline / SS / SS_Mask).
//!
//! Trains 4 networks × (1 baseline + 2 schemes × λ grid). Run:
//! `cargo run --release -p lts-bench --bin table4_sparsified`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::table4_rows;
use lts_core::report::render_table4;

fn main() {
    let preset = effort_from_env();
    banner("Table IV — communication-aware sparsified parallelization (16 cores)", &preset);
    let rows = table4_rows(&preset).expect("table 4 experiment");
    println!("{}", render_table4(&rows));
    println!();
    println!("Paper (accuracy / traffic / speedup / energy reduction):");
    println!("  MLP      SS 98.38% 30% 1.40x 59%   SS_Mask 98.36% 11% 1.59x 81%");
    println!("  LeNet    SS 98.98% 82% 1.20x 15%   SS_Mask 98.60% 23% 1.51x 89%");
    println!("  ConvNet  SS 80.15% 46% 1.19x 25%   SS_Mask 79.61% 35% 1.32x 55%");
    println!("  CaffeNet SS 55.02% 98% 1.02x 17%   SS_Mask 54.21% 57% 1.10x 38%");
}
