//! Regenerates the **§III-B motivation claim**: the fraction of a
//! single-pass AlexNet inference spent on inter-core communication on a
//! 16-core CMP (paper: ~23 %).
//!
//! Analytic + flit-level simulation — no training. Run:
//! `cargo run --release -p lts-bench --bin motivation_comm_share`.

use lts_bench::banner;
use lts_core::experiment::{motivation_comm_share, EffortPreset};

fn main() {
    banner("§III-B — AlexNet communication share (16 cores)", &EffortPreset::paper());
    let (report, share) = motivation_comm_share().expect("motivation experiment");
    println!(
        "single-pass latency: {} cycles ({} compute + {} communication)",
        report.total_cycles, report.compute_cycles, report.comm_cycles
    );
    println!("communication share: {:.1}% (paper: ~23%)", share * 100.0);
    println!();
    println!("per-layer breakdown:");
    println!("{:<10} {:>12} {:>12} {:>12}", "layer", "compute", "comm", "traffic(B)");
    for l in &report.layers {
        if l.compute_cycles > 0 || l.comm_cycles > 0 {
            println!(
                "{:<10} {:>12} {:>12} {:>12}",
                l.name, l.compute_cycles, l.comm_cycles, l.traffic_bytes
            );
        }
    }
}
