//! **Extension experiment**: multi-chip-module throughput scaling.
//! Sweeps 1 → 8 chiplets (each a Table II 16-core mesh, joined by
//! interposer links) over the Table III/IV benchmark networks, pitting
//! the stage-pipelined schedule against whole-network replication, and
//! emits `BENCH_mcm.json` with per-hop-class (intra- vs inter-chip)
//! traversal and energy accounting plus simcache hit/miss totals.
//!
//! Analytic + simulation, no training. Run:
//! `cargo run --release -p lts-bench --bin mcm_scaling`
//! (`LTS_MCM_MAX_CHIPLETS=2` caps the sweep for a smoke pass).
//!
//! # Panics
//!
//! Panics when throughput fails to scale monotonically with the chiplet
//! count — that is the experiment's acceptance invariant.

use lts_bench::timing::{iters_from_env, time, BenchReport};
use lts_bench::{banner, effort_from_env};
use lts_core::{scale_chiplets, McmScalingRow};
use lts_nn::descriptor::{convnet_spec, lenet_spec, mlp_spec};
use serde::Serialize;
use std::collections::HashMap;

/// Cores per chiplet: the paper's Table II chip.
const CORES_PER_CHIPLET: usize = 16;

/// One serialized sweep point, tagged with its network.
#[derive(Serialize)]
struct TaggedRow {
    network: String,
    row: McmScalingRow,
}

fn chiplet_counts() -> Vec<usize> {
    let max = std::env::var("LTS_MCM_MAX_CHIPLETS")
        .ok()
        .map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| panic!("LTS_MCM_MAX_CHIPLETS must be an integer, got `{v}`"))
                .max(1)
        })
        .unwrap_or(8);
    [1usize, 2, 4, 8].into_iter().filter(|&n| n <= max).collect()
}

fn main() {
    let preset = effort_from_env();
    banner("Extension — multi-chip-module throughput scaling", &preset);
    let counts = chiplet_counts();
    let mut report = BenchReport::new("mcm", if counts.len() < 4 { "quick" } else { "paper" });
    let iters = iters_from_env(2);
    lts_core::simcache::reset();

    for spec in [mlp_spec(), lenet_spec(), convnet_spec()] {
        let weights = HashMap::new();
        let mut rows = Vec::new();
        // Warmup populates the cross-sweep simcache; measured iterations
        // then show the memoized steady state.
        report.push(time(&format!("scale_chiplets/{}", spec.name), 1, iters, || {
            rows = scale_chiplets(&spec, &weights, CORES_PER_CHIPLET, &counts)
                .expect("mcm scaling sweep");
        }));
        println!(
            "  {:<10} {:>8} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "network", "chiplets", "stages", "latency", "interval", "ipmc", "intra", "inter"
        );
        for row in &rows {
            println!(
                "  {:<10} {:>8} {:>6} {:>12} {:>12} {:>12.3} {:>10} {:>10}",
                spec.name,
                row.chiplets,
                row.stages,
                row.latency_cycles,
                row.interval_cycles,
                row.throughput_ipmc,
                row.intra_chip_traversals,
                row.inter_chip_traversals
            );
            let tagged = TaggedRow { network: spec.name.clone(), row: row.clone() };
            report.notes.push(serde_json::to_string(&tagged).expect("sweep row serializes"));
        }
        for pair in rows.windows(2) {
            assert!(
                pair[1].throughput_ipmc > pair[0].throughput_ipmc,
                "{}: throughput must scale monotonically ({} -> {} chiplets)",
                spec.name,
                pair[0].chiplets,
                pair[1].chiplets
            );
        }
        println!();
    }

    let cache = lts_core::simcache::stats();
    report.note(format!(
        "simcache: {} hits / {} misses ({} entries)",
        cache.hits, cache.misses, cache.entries
    ));
    if counts.len() < 4 {
        report.note(format!("sweep capped at {:?} chiplets (LTS_MCM_MAX_CHIPLETS)", counts));
    }
    report.attach_probes();
    report.write_checked().expect("write BENCH_mcm.json");
}
