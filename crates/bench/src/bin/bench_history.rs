//! Cross-commit performance-history driver (see `DESIGN.md` §18).
//!
//! ```text
//! bench_history run <bench> [--reps N] [--warmup N]   # measure + append
//! bench_history compare <bench> [--gate]              # latest vs previous
//! bench_history report <bench>                        # trend md + json
//! bench_history list                                  # ledger contents
//! bench_history smoke                                 # synthetic self-test
//! ```
//!
//! Registered benches: `table3_structure_level` (the paper's Table III
//! pipeline, honors `LTS_EFFORT`) and `matmul_micro` (256³ blocked GEMM,
//! seconds per repetition). The ledger root is `LTS_BENCH_HISTORY_DIR`,
//! default `BENCH_HISTORY/` under `LTS_BENCH_DIR`. Dirty working trees
//! are refused unless `LTS_BENCH_ALLOW_DIRTY=1`.
//!
//! `smoke` builds a synthetic two-commit history in a temp ledger — one
//! metric with an injected 30 % slowdown, one with 2 % jitter — and
//! asserts the first is flagged `Regression` and the second is not,
//! end-to-end through the store, comparator, and trend renderer.

use lts_bench::history::store::SCHEMA_VERSION;
use lts_bench::history::{
    allow_dirty_from_env, compare_records, fnv1a64_hex, run_repetitions, trend_report,
    HistoryRecord, HistoryStore, MetricKind, MetricSeries, RunSpec, SignificanceConfig, Verdict,
};
use lts_bench::timing::{iters_from_env, time, BenchReport, HostFingerprint};
use lts_bench::{banner, effort_from_env};
use lts_core::experiment::{table3_rows, EffortPreset};
use lts_tensor::matmul::matmul;
use lts_tensor::{init, Shape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "run" => cmd_run(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "list" => cmd_list(),
        "smoke" => cmd_smoke(),
        _ => {
            println!(
                "usage: bench_history <run <bench> [--reps N] [--warmup N] \
                 | compare <bench> [--gate] | report <bench> | list | smoke>\n\
                 registered benches: {}",
                REGISTRY.join(", ")
            );
        }
    }
}

/// Benches the runner knows how to execute.
const REGISTRY: [&str; 2] = ["table3_structure_level", "matmul_micro"];

/// One repetition of a registered bench: a fresh [`BenchReport`] whose
/// records carry per-iteration medians and whose probes come from the
/// repetition's own `lts-obs` snapshot (the runner resets it between
/// repetitions).
fn run_bench_once(bench: &str, preset: &EffortPreset, effort_label: &str) -> BenchReport {
    let mut report = BenchReport::new(bench, effort_label);
    match bench {
        "table3_structure_level" => {
            report.push(time("table3.e2e", 0, iters_from_env(1), || {
                let rows = table3_rows(preset).expect("table 3 experiment");
                assert!(!rows.is_empty());
            }));
        }
        "matmul_micro" => {
            let mut rng = init::rng(1);
            let a = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
            let b = init::uniform(Shape::d2(256, 256), 1.0, &mut rng);
            report.push(time("matmul_256", 1, iters_from_env(5), || {
                let c = matmul(&a, &b).expect("matmul");
                std::hint::black_box(&c);
            }));
        }
        other => panic!("unknown bench `{other}`; registered: {}", REGISTRY.join(", ")),
    }
    report.attach_probes();
    report
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| panic!("{flag} needs an integer, got `{v}`"))
        })
        .unwrap_or(default)
}

fn bench_arg(args: &[String]) -> String {
    args.iter()
        .find(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .cloned()
        .unwrap_or_else(|| panic!("missing <bench> argument; registered: {}", REGISTRY.join(", ")))
}

fn cmd_run(args: &[String]) {
    let bench = bench_arg(args);
    let reps = parse_flag(args, "--reps", 5);
    let warmup_reps = parse_flag(args, "--warmup", 1);
    let preset = effort_from_env();
    let effort_label = if preset == EffortPreset::quick() { "quick" } else { "paper" };
    banner(&format!("performance history: {bench} × {reps} repetitions"), &preset);

    // Probes need obs recording on; each repetition gets a fresh registry.
    lts_obs::set_enabled(true);
    let spec = RunSpec {
        bench: bench.clone(),
        params: format!(
            "bench={bench};effort={effort_label};iters={};threads={}",
            iters_from_env(0),
            lts_tensor::par::current().threads()
        ),
        effort: effort_label.into(),
        reps,
        warmup_reps,
    };
    let record = run_repetitions(&spec, |rep| {
        println!("-- repetition {rep} --");
        run_bench_once(&bench, &preset, effort_label)
    })
    .expect("history run");

    println!(
        "\naggregated {} metrics over {} repetitions at rev {}{}",
        record.metrics.len(),
        record.reps,
        record.git_rev,
        if record.git_dirty { " (dirty tree)" } else { "" }
    );
    for m in &record.metrics {
        println!(
            "  {:<8} {:<44} median {:>10.3} ms  ±{:>8.3} MAD  [{:.3}, {:.3}]",
            m.kind.label(),
            m.metric,
            m.median_ms,
            m.mad_ms,
            m.min_ms,
            m.max_ms
        );
    }
    let store = HistoryStore::open_from_env().expect("open history store");
    let path = store.append(record, allow_dirty_from_env()).expect("append history record");
    println!("\nappended {}", path.display());
}

fn cmd_compare(args: &[String]) {
    let bench = bench_arg(args);
    let gate = args.iter().any(|a| a == "--gate");
    let store = HistoryStore::open_from_env().expect("open history store");
    let (previous, latest) = store.latest_pair(&bench).expect("two history entries");
    let report = compare_records(&previous, &latest, &SignificanceConfig::default());
    println!("{}", report.to_markdown());
    for v in &report.verdicts {
        println!("  {} `{}`: {}", v.verdict.label(), v.metric, v.reason);
    }
    let regressions = report.regressions();
    if gate && !regressions.is_empty() {
        let names: Vec<&str> = regressions.iter().map(|v| v.metric.as_str()).collect();
        panic!(
            "{} significant regression(s) vs {}: {}",
            regressions.len(),
            report.old_rev,
            names.join(", ")
        );
    }
}

fn cmd_report(args: &[String]) {
    let bench = bench_arg(args);
    let store = HistoryStore::open_from_env().expect("open history store");
    let history = store.load_bench(&bench).expect("load history");
    assert!(!history.is_empty(), "no history for `{bench}` under {}", store.root().display());
    let report = trend_report(&history, &SignificanceConfig::default());
    println!("{}", report.to_markdown());
    let out_dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let (md, json) = report.write(&out_dir).expect("write trend report");
    println!("wrote {} and {}", md.display(), json.display());
}

fn cmd_list() {
    let store = HistoryStore::open_from_env().expect("open history store");
    let benches = store.benches().expect("list benches");
    if benches.is_empty() {
        println!("history ledger {} is empty", store.root().display());
        return;
    }
    for bench in benches {
        println!("{bench}:");
        for rec in store.load_bench(&bench).expect("load bench history") {
            println!(
                "  seq {:>4}  rev {:<10} {:>2} reps  {:>3} metrics  effort {}{}",
                rec.seq,
                rec.git_rev,
                rec.reps,
                rec.metrics.len(),
                rec.effort,
                if rec.git_dirty { "  (dirty)" } else { "" }
            );
        }
    }
}

/// Synthetic end-to-end self-test: two commits, one metric slowed 30 %,
/// one jittered 2 %, plus a sub-jitter-floor probe — through the real
/// store, comparator, and trend renderer, with hard assertions.
fn cmd_smoke() {
    let root = std::env::temp_dir().join(format!("lts-history-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = HistoryStore::open(&root).expect("open smoke ledger");

    let base = [100.0, 99.0, 101.0, 100.5, 99.5, 100.2];
    let jitter = [102.0, 100.9, 103.0, 102.6, 101.4, 102.3]; // ~+2%, overlapping
    let entry = |rev: &str, e2e_scale: f64, jitter_samples: &[f64]| {
        let fingerprint = HostFingerprint::probe();
        HistoryRecord {
            schema: SCHEMA_VERSION,
            seq: 0,
            bench: "smoke".into(),
            params: "synthetic".into(),
            params_hash: fnv1a64_hex("synthetic"),
            git_rev: rev.into(),
            git_dirty: false,
            effort: "quick".into(),
            reps: base.len(),
            fingerprint,
            notes: vec![],
            metrics: vec![
                MetricSeries::from_samples(
                    "e2e",
                    MetricKind::Record,
                    base.iter().map(|x| x * e2e_scale).collect(),
                ),
                MetricSeries::from_samples(
                    "jitter_only",
                    MetricKind::Record,
                    jitter_samples.to_vec(),
                ),
                MetricSeries::from_samples(
                    "core.sub_floor_probe",
                    MetricKind::Probe,
                    base.iter().map(|x| x * e2e_scale * 1e-5).collect(),
                ),
            ],
        }
    };

    store.append(entry("baseline", 1.0, &base), true).expect("append baseline");
    store.append(entry("suspect", 1.30, &jitter), true).expect("append suspect");

    let (previous, latest) = store.latest_pair("smoke").expect("pair");
    let report = compare_records(&previous, &latest, &SignificanceConfig::default());
    println!("{}", report.to_markdown());

    let verdict_of = |name: &str| {
        report
            .verdicts
            .iter()
            .find(|v| v.metric == name)
            .unwrap_or_else(|| panic!("metric `{name}` missing from comparison"))
    };
    let slowed = verdict_of("e2e");
    assert_eq!(
        slowed.verdict,
        Verdict::Regression,
        "30% slowdown must be flagged significant: {slowed:?}"
    );
    assert!(slowed.p_value < 0.05, "{slowed:?}");
    let jittered = verdict_of("jitter_only");
    assert_ne!(
        jittered.verdict,
        Verdict::Regression,
        "2% jitter must not be flagged: {jittered:?}"
    );
    let sub_floor = verdict_of("core.sub_floor_probe");
    assert_eq!(
        sub_floor.verdict,
        Verdict::Inconclusive,
        "sub-50µs probes sit below the jitter floor: {sub_floor:?}"
    );

    // Dirty-tree refusal is part of the contract.
    let mut dirty = entry("dirtyrev", 1.0, &base);
    dirty.git_dirty = true;
    let err = store.append(dirty, false).expect_err("dirty tree must be refused");
    assert!(err.to_string().contains("LTS_BENCH_ALLOW_DIRTY"), "{err}");

    // Trend renderer over the same ledger.
    let history = store.load_bench("smoke").expect("load");
    let trend = trend_report(&history, &SignificanceConfig::default());
    println!("{}", trend.to_markdown());
    let e2e_row = trend.rows.iter().find(|r| r.metric == "e2e").expect("e2e trend row");
    assert_eq!(e2e_row.first_regressing_rev.as_deref(), Some("suspect"), "{e2e_row:?}");
    assert_eq!(e2e_row.latest_verdict, Verdict::Regression);
    assert_eq!(e2e_row.points.len(), 2);
    assert!(e2e_row.points[1].mad_ms > 0.0, "dispersion band present: {e2e_row:?}");

    let _ = std::fs::remove_dir_all(&root);
    println!("history smoke ok: 30% slowdown flagged, 2% jitter not, dirty tree refused");
}
