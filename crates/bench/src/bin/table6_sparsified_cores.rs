//! Regenerates **Table VI**: communication-aware sparsified
//! parallelization of LeNet on 8 and 32 cores.
//!
//! Run: `cargo run --release -p lts-bench --bin table6_sparsified_cores`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::table6_rows;
use lts_core::report::render_table4;

fn main() {
    let preset = effort_from_env();
    banner("Table VI — sparsified parallelization of LeNet on 8 and 32 cores", &preset);
    let rows = table6_rows(&preset).expect("table 6 experiment");
    println!("{}", render_table4(&rows));
    println!();
    println!("Paper (accuracy / traffic / speedup / energy reduction):");
    println!("  8 cores  SS 98.9% 80% 1.20x 10%   SS_Mask 98.9% 68% 1.22x 32%");
    println!("  32 cores SS 98.7% 32% 1.49x 34%   SS_Mask 98.6% 18% 1.58x 56%");
}
