//! **Extension experiment** (beyond the paper's tables): structure-level
//! grouping and communication-aware sparsification composed — the paper
//! notes its inter-core policies are orthogonal; this quantifies the
//! combination.
//!
//! Run: `cargo run --release -p lts-bench --bin extension_combined`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::combined_strategy_rows;
use lts_core::report::render_table;

fn main() {
    let preset = effort_from_env();
    banner("Extension — Grouped + SS_Mask combined (ConvNet, 16 cores)", &preset);
    let rows = combined_strategy_rows(&preset).expect("combined experiment");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.3}", r.accuracy),
                format!("{:.0}%", r.traffic_rate * 100.0),
                format!("{:.2}x", r.speedup),
                format!("{:.0}%", r.energy_reduction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Strategy", "Accu.", "NoC traffic", "Speedup", "Energy red."], &data)
    );
    println!();
    println!("Expected shape: grouping removes the conv transitions; SS_Mask then");
    println!("removes most of what remains (the FC transition), compounding the win.");
}
