//! Regenerates **Fig. 6(b)**: the final group-level weight matrix of an
//! SS_Mask-trained layer — which producer→consumer blocks survive.
//!
//! Run: `cargo run --release -p lts-bench --bin fig6_weight_matrix`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::fig6_matrix;
use lts_core::report::render_group_matrix;
use lts_noc::Mesh2d;

fn main() {
    let preset = effort_from_env();
    banner("Fig. 6(b) — final group-level weight matrix (MLP/ip2, SS_Mask, 16 cores)", &preset);
    let matrix = fig6_matrix(&preset).expect("fig 6 experiment");
    println!("{}", render_group_matrix(&matrix));
    let mesh = Mesh2d::new(4, 4);
    println!(
        "mean hop distance of surviving off-diagonal groups: {:.2} (mesh mean: {:.2})",
        matrix.mean_surviving_distance(&mesh),
        mesh.mean_distance()
    );
    println!();
    println!("Expected shape (paper): diagonal groups survive; long-distance groups pruned away.");
}
