//! **Extension experiment**: quantify the paper's §II-B objection to
//! inter-layer pipelining ("pipelining layers with distinct
//! hyper-parameters cause severe load-imbalance issue on cores") by
//! implementing it and comparing against the paper's intra-layer split.
//!
//! Analytic + simulation, no training. Run:
//! `cargo run --release -p lts-bench --bin extension_interlayer`.

use lts_accel::{CoreConfig, CoreModel};
use lts_bench::banner;
use lts_core::experiment::EffortPreset;
use lts_core::interlayer::{balance_layers, evaluate_pipeline};
use lts_core::SystemModel;
use lts_noc::NocConfig;
use lts_partition::Plan;

fn main() {
    banner("Extension — inter-layer pipelining vs intra-layer split", &EffortPreset::paper());
    let model = CoreModel::new(CoreConfig::diannao());
    let noc = NocConfig::paper_16core();
    for spec in [lts_nn::descriptor::lenet_spec(), lts_nn::descriptor::alexnet_spec()] {
        println!("{} on 16 cores:", spec.name);
        // Inter-layer pipeline (the §II-B alternative).
        let mapping = balance_layers(&spec, 16, &model);
        let pipe = evaluate_pipeline(&spec, &mapping, &model, &noc).expect("pipeline eval");
        println!(
            "  pipelined : latency {:>9} cycles, interval {:>9} cycles/inference, load imbalance {:.2}x",
            pipe.latency_cycles, pipe.bottleneck_cycles, pipe.imbalance
        );
        // Intra-layer split (the paper's approach, traditional flavour).
        let split = SystemModel::paper(16)
            .expect("model")
            .evaluate(&Plan::dense(&spec, 16, 2).expect("plan"))
            .expect("evaluate");
        println!(
            "  intra-layer: latency {:>9} cycles, interval {:>9} cycles/inference ({:.1}% comm)",
            split.total_cycles,
            split.total_cycles,
            split.comm_share() * 100.0
        );
        let latency_win = pipe.latency_cycles as f64 / split.total_cycles as f64;
        println!(
            "  -> intra-layer answers {:.1}x sooner; the pipeline's slowest stage runs {:.1}x above the mean (the paper's load-imbalance objection)\n",
            latency_win, pipe.imbalance
        );
    }
}
