//! Runs the **MCM fault sweep** (chiplet-loss fault tolerance
//! extension): mid-inference whole-chiplet deaths across package
//! shapes, victim chiplets, and the three parallelization strategies,
//! plus one serving ride-through cell where a chiplet dies mid-stream.
//!
//! Every recovery cell must satisfy the chiplet-loss contract:
//!
//! 1. exactly one recovery event — hierarchical detection (per-router
//!    heartbeats aggregated to a chiplet-liveness verdict) fires once;
//! 2. the pipeline restages onto the survivor chiplets: fewer, fatter
//!    stages, with overhead vs the fault-free run at least 1×;
//! 3. no silent accuracy loss — MCM replans regenerate layouts, so the
//!    lost-output fraction is exactly zero (only in-flight boundary
//!    units can be lost, and that fraction stays in `[0, 1]`).
//!
//! The serving cell must ride the loss out: one recovery, a split
//! timeline, bounded throughput dip, and the traditional profile
//! reporting one fewer pipeline stage after the death.
//!
//! The binary exits nonzero if any cell violates its contract. Timings
//! are recorded per cell and written to `BENCH_mcm_fault.json` (into
//! `LTS_BENCH_DIR`), participating in the `LTS_BENCH_BASELINE`
//! regression gate. `LTS_EFFORT=quick` trims the sweep to one package
//! shape and one victim. Run:
//! `cargo run --release -p lts-bench --bin mcm_fault_sweep`
//!
//! Results are bit-reproducible at any `LTS_THREADS` and any simcache
//! temperature: the NoC simulator is single-threaded and the bin
//! re-runs one cell on a cold cache to prove it.

use lts_bench::timing::{self, BenchReport};
use lts_core::recovery::{run_with_recovery_chiplets, ChipletFault, RecoveryReport};
use lts_core::serve::service_capacity_rpmc;
use lts_core::simcache::{self, SimUsage};
use lts_core::{
    chiplet_stream_fault, run_serving, workloads, ArrivalConfig, ArrivalProcess, ServingConfig,
    ServingStrategy, SystemModel, Workload,
};
use lts_noc::MonitorConfig;

/// One recovery cell: a package shape, a strategy workload, and the
/// chiplet that dies mid-inference.
struct RecoveryCell {
    label: String,
    chiplets: usize,
    cores: usize,
    strategy_idx: usize,
    victim: usize,
}

/// The package × victim grid for the effort level. `cores` is per
/// chiplet; every shape keeps 16 cores total so strategies compare
/// across shapes.
fn grid(effort: &str) -> Vec<(usize, usize, Vec<usize>)> {
    match effort {
        "quick" => vec![(2, 8, vec![1])],
        _ => vec![(2, 8, vec![1]), (4, 4, vec![1, 2, 3])],
    }
}

fn recovery_cells(effort: &str, ladders: &[Vec<Workload>]) -> Vec<RecoveryCell> {
    let mut cells = Vec::new();
    for (shape_idx, (chiplets, cores, victims)) in grid(effort).into_iter().enumerate() {
        for (strategy_idx, w) in ladders[shape_idx].iter().enumerate() {
            for &victim in &victims {
                cells.push(RecoveryCell {
                    label: format!("{chiplets}x{cores}/{}/kill-c{victim}", w.strategy),
                    chiplets,
                    cores,
                    strategy_idx,
                    victim,
                });
            }
        }
    }
    cells
}

fn run_cell(cell: &RecoveryCell, w: &Workload) -> RecoveryReport {
    let model = SystemModel::paper_mcm(cell.chiplets, cell.cores).expect("mcm model");
    // Strike mid-network: some stages complete, some must restage.
    let layer = w.spec.layers.len() / 2;
    let faults = [ChipletFault { layer, dead_chiplets: vec![cell.victim] }];
    run_with_recovery_chiplets(&model, &w.spec, &w.weights, &faults, &MonitorConfig::default())
        .expect("chiplet recovery run")
}

/// Chiplet-loss contract violations for one recovery cell.
fn check_recovery(cell: &RecoveryCell, r: &RecoveryReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.events.len() != 1 {
        v.push(format!("{} recovery events for one scheduled chiplet death", r.events.len()));
        return v;
    }
    let e = &r.events[0];
    if e.dead_cores.len() != cell.cores {
        v.push(format!(
            "{} dead cores, expected the whole chiplet ({})",
            e.dead_cores.len(),
            cell.cores
        ));
    }
    if e.survivors != (cell.chiplets - 1) * cell.cores {
        v.push(format!(
            "{} survivor cores, expected {}",
            e.survivors,
            (cell.chiplets - 1) * cell.cores
        ));
    }
    if e.detection_cycles == 0 {
        v.push("chiplet death went undetected".into());
    }
    let overhead = r.overhead_vs_fault_free();
    if !overhead.is_finite() || overhead < 1.0 {
        v.push(format!("recovery overhead {overhead:.3}x beats the fault-free run"));
    }
    if r.lost_output_fraction != 0.0 {
        v.push(format!(
            "lost output fraction {} — MCM replans must regenerate layouts",
            r.lost_output_fraction
        ));
    }
    if !(0.0..=1.0).contains(&r.lost_boundary_fraction) {
        v.push(format!("lost boundary fraction {} out of bounds", r.lost_boundary_fraction));
    }
    v
}

/// The serving ride-through cell: a 4-chiplet package at 0.6× capacity
/// loses chiplet 2 at 1.2M cycles and must keep serving.
fn serving_cell(horizon: u64) -> ServingConfig {
    let mut config = ServingConfig {
        cores: 4,
        chiplets: 4,
        strategy: ServingStrategy::Traditional,
        max_batch: 4,
        ..ServingConfig::default()
    };
    let capacity = service_capacity_rpmc(&config).expect("mcm service capacity");
    config.arrivals = ArrivalConfig {
        process: ArrivalProcess::Poisson { rate_rpmc: capacity * 0.6 },
        horizon_cycles: horizon,
        seed: 2019,
    };
    config.faults =
        vec![chiplet_stream_fault(&config, 2, 1_200_000).expect("chiplet stream fault")];
    config
}

fn check_serving(r: &lts_core::ServingReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.outcomes.total() as usize != r.offered {
        v.push(format!("{} outcomes for {} offered requests", r.outcomes.total(), r.offered));
    }
    if r.halted_at.is_some() {
        v.push(format!("stream halted at {:?}", r.halted_at));
    }
    if r.recoveries.len() != 1 {
        v.push(format!("{} recoveries for one scheduled chiplet death", r.recoveries.len()));
    }
    if r.phases.len() < 2 {
        v.push(format!("{} phases — the death never split the timeline", r.phases.len()));
    }
    if let (Some(pre), Some(post)) = (r.phases.first(), r.phases.last()) {
        if post.served == 0 {
            v.push("post-fault phase served nothing".into());
        }
        if post.sustained_rpmc <= 0.0 || post.sustained_rpmc < pre.sustained_rpmc * 0.2 {
            v.push(format!(
                "post-fault throughput {:.3} rpmc collapsed vs pre-fault {:.3}",
                post.sustained_rpmc, pre.sustained_rpmc
            ));
        }
    }
    match r.strategies.iter().find(|s| s.strategy == ServingStrategy::Traditional) {
        Some(s) if s.stages != 3 => v.push(format!(
            "traditional profile reports {} stages on 3 survivor chiplets",
            s.stages
        )),
        None => v.push("traditional profile missing from the degraded ladder".into()),
        _ => {}
    }
    v
}

fn main() {
    lts_obs::enable_from_env();
    let effort = std::env::var("LTS_EFFORT").unwrap_or_else(|_| "paper".into());
    let horizon = match effort.as_str() {
        "quick" => 4_000_000u64,
        "paper" => 4_000_000,
        other => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    };
    let iters = timing::iters_from_env(2);
    println!("=== Learn-to-Scale reproduction: MCM chiplet-loss fault sweep ===");
    println!("(effort: {effort}, mid-network chiplet deaths, {iters} timed iters/cell)\n");

    simcache::reset();
    let mut report = BenchReport::new("mcm_fault", &effort);
    let mut sim = SimUsage::default();
    let mut violations: Vec<String> = Vec::new();

    // One strategy ladder per package shape (per-chiplet core counts
    // differ, so the hop-local sparse weights differ too).
    let ladders: Vec<Vec<Workload>> = grid(&effort)
        .iter()
        .map(|&(_, cores, _)| workloads(cores).expect("strategy ladder"))
        .collect();
    let cells = recovery_cells(&effort, &ladders);
    let mut rows: Vec<(String, RecoveryReport)> = Vec::new();
    for cell in &cells {
        let w = &ladders[grid(&effort)
            .iter()
            .position(|&(c, k, _)| c == cell.chiplets && k == cell.cores)
            .expect("cell shape in grid")][cell.strategy_idx];
        let mut last: Option<RecoveryReport> = None;
        let record = timing::time(&cell.label, 1, iters, || {
            last = Some(run_cell(cell, w));
        });
        report.push(record);
        let r = last.expect("timed at least once");
        for problem in check_recovery(cell, &r) {
            violations.push(format!("{}: {problem}", cell.label));
        }
        sim.merge(&r.sim_usage());
        rows.push((cell.label.clone(), r));
    }

    println!(
        "{:<32} {:>12} {:>12} {:>9} {:>9} {:>8} {:>10} {:>6}",
        "cell", "fault-free", "recovered", "overhead", "v-oracle", "detect", "resync-B", "lostB"
    );
    for (label, r) in &rows {
        println!(
            "{:<32} {:>12} {:>12} {:>9} {:>9} {:>8} {:>10} {:>6.3}",
            label,
            r.fault_free.total_cycles,
            r.report.total_cycles,
            format!("{:.3}x", r.overhead_vs_fault_free()),
            r.overhead_vs_oracle().map_or("-".into(), |o| format!("{o:.3}x")),
            r.detection_cycles(),
            r.redistribution_bytes(),
            r.lost_boundary_fraction,
        );
        report.notes.push(format!(
            "{label}: {} -> {} cycles ({:.3}x), detect {} resync {}B lostB {:.3}",
            r.fault_free.total_cycles,
            r.report.total_cycles,
            r.overhead_vs_fault_free(),
            r.detection_cycles(),
            r.redistribution_bytes(),
            r.lost_boundary_fraction
        ));
    }

    // Cold-cache determinism: the first cell, re-run after a simcache
    // reset, must reproduce the recovered latency bit for bit.
    if let (Some(cell), Some((label, warm))) = (cells.first(), rows.first()) {
        simcache::reset();
        let cold = run_cell(cell, &ladders[0][cell.strategy_idx]);
        if cold.report.total_cycles != warm.report.total_cycles || cold.events != warm.events {
            violations.push(format!("{label}: cold-cache re-run diverged from the warm run"));
        } else {
            println!("\ncold-cache re-run of {label}: bit-identical");
        }
    }

    let serving_config = serving_cell(horizon);
    let mut last_serving = None;
    let record = timing::time("serve/4x4/kill-c2@1.2M", 1, iters, || {
        last_serving = Some(run_serving(&serving_config).expect("serving ride-through"));
    });
    report.push(record);
    let sr = last_serving.expect("timed at least once");
    for problem in check_serving(&sr) {
        violations.push(format!("serve/4x4/kill-c2@1.2M: {problem}"));
    }
    sim.merge(&sr.sim);
    let post_stages = sr
        .strategies
        .iter()
        .find(|s| s.strategy == ServingStrategy::Traditional)
        .map_or(0, |s| s.stages);
    println!(
        "\nserve/4x4/kill-c2@1.2M: offered {} served {} recoveries {} phases {} stages 4->{} \
         sustained {:.3} rpmc",
        sr.offered,
        sr.served(),
        sr.recoveries.len(),
        sr.phases.len(),
        post_stages,
        sr.sustained_rpmc
    );
    report.notes.push(format!(
        "serve/4x4/kill-c2@1.2M: offered {} outcomes[{}] recoveries {} stages {}",
        sr.offered,
        sr.outcomes.render(),
        sr.recoveries.len(),
        post_stages
    ));

    let cache = simcache::stats();
    println!(
        "\nsim usage: {} transitions simulated, {} answered from cache ({} hits / {} misses); \
         {} cycles stepped, {} fast-forwarded",
        sim.sims,
        sim.cache_hits,
        cache.hits,
        cache.misses,
        sim.cycles_simulated,
        sim.cycles_fast_forwarded
    );
    println!();
    println!("Each recovery cell kills one whole chiplet mid-network: per-router heartbeat");
    println!("deadlines aggregate to a chiplet-liveness verdict, the boundary tensor is");
    println!("resynced over the interposer, and the remaining layers restage onto the");
    println!("survivor chiplets (fewer, fatter stages). `v-oracle` compares against the");
    println!("oracle static replan that knew the dead set before the run started.");

    report.attach_probes();
    report.write_checked().expect("mcm fault bench report (regression gate)");

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION {v}");
        }
        eprintln!(
            "mcm fault sweep: {} cell(s) violated the chiplet-loss contract",
            violations.len()
        );
        std::process::exit(1);
    }
    println!("\nall {} cells satisfied the chiplet-loss contract", rows.len() + 1);
}
