//! Regenerates **Table V and Fig. 8**: scalability of structure-level
//! parallelization (Parallel#3) on 4, 8, 16 and 32 cores.
//!
//! Trains one grouped network per core count. Run:
//! `cargo run --release -p lts-bench --bin table5_fig8_scalability`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::table5_rows;
use lts_core::report::render_table5;

fn main() {
    let preset = effort_from_env();
    banner("Table V / Fig. 8 — structure-level scalability (Parallel#3)", &preset);
    let rows = table5_rows(&preset).expect("table 5 experiment");
    println!("{}", render_table5(&rows));
    println!();
    println!("Paper Table V: 4 cores 0.694 2.7x | 8 cores 0.718 4.6x | 16 cores 0.742 6.0x | 32 cores 0.722 6.9x");
    println!("Paper Fig. 8: computation speedup/energy grow with cores; communication series stay roughly flat.");
}
