//! Runs the **chaos soak** (robustness extension): randomized
//! mid-flight core-death schedules against the online fault-recovery
//! path, over the three parallelization strategies on the paper's
//! 16-core mesh — plus MCM packages, where the soak samples the
//! package-level fault classes (whole-chiplet deaths and interposer
//! seam severings) instead.
//!
//! Every trial must end with a bounded lost-output fraction or a typed
//! fail-operational outcome (`unreachable` / `cycle-limit`; seam
//! ride-throughs report `served`) — never a panic or a hang; the
//! binary exits nonzero if any trial violates that contract.
//! `LTS_EFFORT=quick` trims the soak to a smoke test.
//! Writes `BENCH_chaos_soak.json` into `LTS_BENCH_DIR` (default: the
//! current directory). Run:
//! `cargo run --release -p lts-bench --bin chaos_soak`
//!
//! Results are bit-reproducible at any `LTS_THREADS`: schedules are
//! stateless hash draws and the NoC simulator is single-threaded.

use lts_core::chaos::{chaos_soak, outcome_histogram, ChaosConfig, ChaosRow};
use lts_core::simcache::{self, SimCacheStats, SimUsage};
use lts_core::Outcome;
use serde::Serialize;

#[derive(Serialize)]
struct SoakArtifact {
    bench: String,
    effort: String,
    threads: usize,
    config: ChaosConfig,
    rows: Vec<ChaosRow>,
    sim: SimUsage,
    sim_cache: SimCacheStats,
}

fn main() {
    lts_obs::enable_from_env();
    let effort = std::env::var("LTS_EFFORT").unwrap_or_else(|_| "paper".into());
    let config = match effort.as_str() {
        // Package sizes above 1 soak the MCM fault classes: chiplet
        // deaths and interposer seam severings on a paper_mcm package.
        "quick" => ChaosConfig { chiplets: vec![1, 2], ..ChaosConfig::quick() },
        "paper" => ChaosConfig { chiplets: vec![1, 2, 4], ..ChaosConfig::default() },
        other => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    };
    println!("=== Learn-to-Scale reproduction: chaos soak (online fault recovery) ===");
    println!(
        "(effort: {effort}, {} cores, packages {:?}, {} trials/strategy, ≤{} faults × ≤{} deaths \
         each, seed {})\n",
        config.cores,
        config.chiplets,
        config.trials,
        config.max_faults,
        config.max_dead_per_fault,
        config.seed
    );

    simcache::reset();
    let rows = chaos_soak(&config).expect("chaos soak");
    let mut violations = 0usize;
    println!(
        "{:<12} {:>5} {:>5} {:>8}  {:<28} {:>12} {:>9} {:>8} {:>9}",
        "strategy", "trial", "chips", "class", "schedule", "outcome", "overhead", "lost", "detect"
    );
    for r in &rows {
        let schedule = if r.fault_class == "seam" {
            format!("seam {}~{}", r.dead_chiplets[0], r.dead_chiplets[1])
        } else {
            r.faults
                .iter()
                .map(|f| format!("L{}-{:?}", f.layer, f.dead_cores))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<12} {:>5} {:>5} {:>8}  {:<28} {:>12} {:>9} {:>8} {:>9}",
            r.strategy,
            r.trial,
            r.chiplets,
            r.fault_class,
            schedule,
            r.outcome,
            if r.outcome.is_success() {
                format!("{:.3}x", r.overhead_vs_fault_free)
            } else {
                "-".into()
            },
            format!("{:.3}", r.lost_output_fraction),
            if r.outcome.is_success() { r.detection_cycles.to_string() } else { "-".into() },
        );
        // Seam severings are static ride-throughs: success is `served`.
        // Everything else must recover or fail with a typed outcome.
        let allowed = if r.fault_class == "seam" {
            matches!(r.outcome, Outcome::Served | Outcome::Unreachable | Outcome::CycleLimit)
        } else {
            matches!(r.outcome, Outcome::Recovered | Outcome::Unreachable | Outcome::CycleLimit)
        };
        if !(0.0..=1.0).contains(&r.lost_output_fraction) || !allowed {
            violations += 1;
        }
    }
    println!();
    for &chiplets in &config.chiplets {
        let per_topo: Vec<ChaosRow> =
            rows.iter().filter(|r| r.chiplets == chiplets).cloned().collect();
        let histogram = outcome_histogram(&per_topo);
        let label =
            if chiplets == 1 { "single-chip mesh".into() } else { format!("{chiplets}-chiplet") };
        println!("outcomes [{label}]: {}", histogram.render());
    }
    println!("aggregate outcomes: {}", outcome_histogram(&rows).render());
    println!();
    println!("Mesh trials kill cores mid-inference; the system detects the deaths via");
    println!("heartbeat deadlines, reshards the remaining layers over the survivors, and");
    println!("finishes on the degraded mesh. `overhead` is latency vs the fault-free run;");
    println!("`lost` is the bounded output-loss fraction: the in-flight boundary units that");
    println!("died with their cores (any strategy), plus — for grouped plans only — the");
    println!("output channels whose pinned weight chains died (permanent accuracy loss).");
    println!("MCM trials alternate whole-chiplet deaths (hierarchical detection, then the");
    println!("pipeline restages on the survivor chiplets) with interposer-seam severings");
    println!("(static ride-through on the healthy stage plan, `served` when the NoC");
    println!("reroutes around the dead seam).");
    println!();
    let mut sim = SimUsage::default();
    for r in &rows {
        sim.merge(&r.sim);
    }
    let sim_cache = simcache::stats();
    println!(
        "sim usage: {} transitions simulated, {} answered from cache ({} cache hits / {} \
         misses); {} cycles stepped, {} fast-forwarded",
        sim.sims,
        sim.cache_hits,
        sim_cache.hits,
        sim_cache.misses,
        sim.cycles_simulated,
        sim.cycles_fast_forwarded
    );

    let artifact = SoakArtifact {
        bench: "chaos_soak".into(),
        effort,
        threads: lts_tensor::par::current().threads(),
        config,
        rows,
        sim,
        sim_cache,
    };
    let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_chaos_soak.json");
    let json = serde_json::to_string_pretty(&artifact).expect("serialize soak");
    std::fs::write(&path, json + "\n").expect("write soak artifact");
    println!("\nwrote {}", path.display());

    if violations > 0 {
        eprintln!("chaos soak: {violations} trial(s) violated the bounded-loss contract");
        std::process::exit(1);
    }
}
