//! Runs the **chaos soak** (robustness extension): randomized
//! mid-flight core-death schedules against the online fault-recovery
//! path, over the three parallelization strategies on the paper's
//! 16-core mesh.
//!
//! Every trial must end with a bounded lost-output fraction or a typed
//! fail-operational outcome (`unreachable` / `cycle-limit`) — never a
//! panic or a hang; the binary exits nonzero if any trial violates
//! that contract. `LTS_EFFORT=quick` trims the soak to a smoke test.
//! Writes `BENCH_chaos_soak.json` into `LTS_BENCH_DIR` (default: the
//! current directory). Run:
//! `cargo run --release -p lts-bench --bin chaos_soak`
//!
//! Results are bit-reproducible at any `LTS_THREADS`: schedules are
//! stateless hash draws and the NoC simulator is single-threaded.

use lts_core::chaos::{chaos_soak, outcome_histogram, ChaosConfig, ChaosRow};
use lts_core::simcache::{self, SimCacheStats, SimUsage};
use lts_core::Outcome;
use serde::Serialize;

#[derive(Serialize)]
struct SoakArtifact {
    bench: String,
    effort: String,
    threads: usize,
    config: ChaosConfig,
    rows: Vec<ChaosRow>,
    sim: SimUsage,
    sim_cache: SimCacheStats,
}

fn main() {
    lts_obs::enable_from_env();
    let effort = std::env::var("LTS_EFFORT").unwrap_or_else(|_| "paper".into());
    let config = match effort.as_str() {
        "quick" => ChaosConfig::quick(),
        "paper" => ChaosConfig::default(),
        other => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    };
    println!("=== Learn-to-Scale reproduction: chaos soak (online fault recovery) ===");
    println!(
        "(effort: {effort}, {} cores, {} trials/strategy, ≤{} faults × ≤{} deaths each, seed {})\n",
        config.cores, config.trials, config.max_faults, config.max_dead_per_fault, config.seed
    );

    simcache::reset();
    let rows = chaos_soak(&config).expect("chaos soak");
    let mut violations = 0usize;
    println!(
        "{:<12} {:>5}  {:<28} {:>12} {:>9} {:>8} {:>9}",
        "strategy", "trial", "schedule", "outcome", "overhead", "lost", "detect"
    );
    for r in &rows {
        let schedule = r
            .faults
            .iter()
            .map(|f| format!("L{}-{:?}", f.layer, f.dead_cores))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<12} {:>5}  {:<28} {:>12} {:>9} {:>8} {:>9}",
            r.strategy,
            r.trial,
            schedule,
            r.outcome,
            if r.outcome.is_success() {
                format!("{:.3}x", r.overhead_vs_fault_free)
            } else {
                "-".into()
            },
            format!("{:.3}", r.lost_output_fraction),
            if r.outcome.is_success() { r.detection_cycles.to_string() } else { "-".into() },
        );
        if !(0.0..=1.0).contains(&r.lost_output_fraction)
            || !matches!(r.outcome, Outcome::Recovered | Outcome::Unreachable | Outcome::CycleLimit)
        {
            violations += 1;
        }
    }
    let histogram = outcome_histogram(&rows);
    println!();
    println!("aggregate outcomes: {}", histogram.render());
    println!();
    println!("Every trial kills cores mid-inference; the system detects the deaths via");
    println!("heartbeat deadlines, reshards the remaining layers over the survivors, and");
    println!("finishes on the degraded mesh. `overhead` is latency vs the fault-free run;");
    println!("`lost` is the bounded output-loss fraction: the in-flight boundary units that");
    println!("died with their cores (any strategy), plus — for grouped plans only — the");
    println!("output channels whose pinned weight chains died (permanent accuracy loss).");
    println!();
    let mut sim = SimUsage::default();
    for r in &rows {
        sim.merge(&r.sim);
    }
    let sim_cache = simcache::stats();
    println!(
        "sim usage: {} transitions simulated, {} answered from cache ({} cache hits / {} \
         misses); {} cycles stepped, {} fast-forwarded",
        sim.sims,
        sim.cache_hits,
        sim_cache.hits,
        sim_cache.misses,
        sim.cycles_simulated,
        sim.cycles_fast_forwarded
    );

    let artifact = SoakArtifact {
        bench: "chaos_soak".into(),
        effort,
        threads: lts_tensor::par::current().threads(),
        config,
        rows,
        sim,
        sim_cache,
    };
    let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_chaos_soak.json");
    let json = serde_json::to_string_pretty(&artifact).expect("serialize soak");
    std::fs::write(&path, json + "\n").expect("write soak artifact");
    println!("\nwrote {}", path.display());

    if violations > 0 {
        eprintln!("chaos soak: {violations} trial(s) violated the bounded-loss contract");
        std::process::exit(1);
    }
}
