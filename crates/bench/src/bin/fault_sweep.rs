//! Regenerates the **fault-injection degradation sweep** (robustness
//! extension): fault rate × core failures over the three
//! parallelization strategies, on the paper's 16-core mesh.
//!
//! No training is involved, so the sweep is cheap at either effort
//! level; `LTS_EFFORT=quick` trims the grid. Writes
//! `BENCH_fault_sweep.json` into `LTS_BENCH_DIR` (default: the current
//! directory). Run:
//! `cargo run --release -p lts-bench --bin fault_sweep`
//!
//! Results are bit-reproducible at any `LTS_THREADS`: fault schedules
//! are stateless hash draws and the NoC simulator is single-threaded.

use lts_core::degradation::{fault_sweep, FaultSweepConfig, FaultSweepRow};
use lts_core::report::render_fault_sweep;
use lts_core::simcache::{self, SimCacheStats, SimUsage};
use serde::Serialize;

#[derive(Serialize)]
struct SweepArtifact {
    bench: String,
    effort: String,
    threads: usize,
    config: FaultSweepConfig,
    rows: Vec<FaultSweepRow>,
    sim: SimUsage,
    sim_cache: SimCacheStats,
}

fn main() {
    lts_obs::enable_from_env();
    let effort = std::env::var("LTS_EFFORT").unwrap_or_else(|_| "paper".into());
    let config = match effort.as_str() {
        "quick" => FaultSweepConfig::quick(),
        "paper" => FaultSweepConfig::default(),
        other => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    };
    println!("=== Learn-to-Scale reproduction: fault-injection degradation sweep ===");
    println!(
        "(effort: {effort}, {} cores, drop rates {:?}, dead-core sets {:?}, seed {})\n",
        config.cores, config.fault_rates, config.dead_core_sets, config.seed
    );

    simcache::reset();
    let rows = fault_sweep(&config).expect("fault sweep");
    println!("{}", render_fault_sweep(&rows));
    println!();
    let mut sim = SimUsage::default();
    for r in &rows {
        sim.merge(&r.sim);
    }
    let sim_cache = simcache::stats();
    println!(
        "sim usage: {} transitions simulated, {} answered from cache ({} cache hits / {} \
         misses); {} cycles stepped, {} fast-forwarded",
        sim.sims,
        sim.cache_hits,
        sim_cache.hits,
        sim_cache.misses,
        sim.cycles_simulated,
        sim.cycles_fast_forwarded
    );
    println!();
    println!("Latency/energy are relative to the same strategy on the fault-free chip.");
    println!("`Lost out.` is the accuracy proxy: output channels that died with their core");
    println!("(nonzero only for the grouped structure-level plan — its channel groups");
    println!("pin weights and activations to one core; dense plans re-shard losslessly).");

    let artifact = SweepArtifact {
        bench: "fault_sweep".into(),
        effort,
        threads: lts_tensor::par::current().threads(),
        config,
        rows,
        sim,
        sim_cache,
    };
    let dir = std::env::var("LTS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_fault_sweep.json");
    let json = serde_json::to_string_pretty(&artifact).expect("serialize sweep");
    std::fs::write(&path, json + "\n").expect("write sweep artifact");
    println!("\nwrote {}", path.display());
}
