//! Runs the **online-serving sweep** (fail-operational serving
//! extension): seeded open-loop request streams against the serving
//! simulator across load regimes, strategies, and fault schedules, and
//! asserts the three-regime contract:
//!
//! 1. a sub-saturation stream with no faults is served completely —
//!    zero sheds, zero deadline misses, p99 within the latency budget;
//! 2. a 2× overload stream sheds at admission, but every request it
//!    *does* serve still lands within the budget;
//! 3. a mid-stream core death degrades gracefully — detection plus
//!    replanning shows up as a bounded throughput dip, never a halt.
//!
//! The binary exits nonzero if any cell violates its contract. Timings
//! are recorded per cell and written to `BENCH_serving.json` (into
//! `LTS_BENCH_DIR`), participating in the `LTS_BENCH_BASELINE`
//! regression gate. `LTS_EFFORT=quick` trims the sweep to the three
//! contract cells plus a burst and a controller cell. Run:
//! `cargo run --release -p lts-bench --bin serving_sweep`
//!
//! Results are bit-reproducible at any `LTS_THREADS`: arrivals are
//! stateless hash draws and the serving event loop is single-threaded.

use lts_bench::timing::{self, BenchReport};
use lts_core::serve::service_capacity_rpmc;
use lts_core::simcache::{self, SimUsage};
use lts_core::{
    run_serving, ArrivalConfig, ArrivalProcess, ControllerConfig, ServingConfig, ServingReport,
    ServingStrategy, StreamFault,
};

/// Which regime contract a cell must satisfy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Contract {
    /// Zero sheds, zero misses, p99 within budget.
    SubSaturation,
    /// Sheds at admission, but every served request within budget.
    Overload,
    /// Bursty arrivals: everything accounted for, stream keeps serving.
    Burst,
    /// Mid-stream core death: one recovery, bounded QPS dip, no halt.
    FaultRide,
    /// SLO controller engaged: at least one strategy switch, no halt.
    Controller,
}

struct Cell {
    label: String,
    config: ServingConfig,
    contract: Contract,
}

/// A cell driven by a Poisson stream at `load` × the strategy's
/// saturated service capacity.
fn poisson_cell(
    label: &str,
    load: f64,
    strategy: ServingStrategy,
    horizon: u64,
    contract: Contract,
) -> Cell {
    let mut config = ServingConfig { strategy, max_batch: 4, ..ServingConfig::default() };
    let capacity = service_capacity_rpmc(&config).expect("service capacity");
    config.arrivals = ArrivalConfig {
        process: ArrivalProcess::Poisson { rate_rpmc: capacity * load },
        horizon_cycles: horizon,
        seed: 2019,
    };
    Cell { label: label.to_string(), config, contract }
}

fn cells(effort: &str, horizon: u64) -> Vec<Cell> {
    let mut cells = vec![
        poisson_cell(
            "poisson-0.4x/traditional",
            0.4,
            ServingStrategy::Traditional,
            horizon,
            Contract::SubSaturation,
        ),
        poisson_cell(
            "poisson-2.0x/traditional",
            2.0,
            ServingStrategy::Traditional,
            horizon,
            Contract::Overload,
        ),
        {
            let mut c = poisson_cell(
                "burst-0.3x-2.0x/ss-mask",
                0.3,
                ServingStrategy::SsMask,
                horizon,
                Contract::Burst,
            );
            let base = match c.config.arrivals.process {
                ArrivalProcess::Poisson { rate_rpmc } => rate_rpmc,
                ArrivalProcess::Burst { base_rpmc, .. } => base_rpmc,
            };
            c.config.arrivals.process = ArrivalProcess::Burst {
                base_rpmc: base,
                burst_rpmc: base * (2.0 / 0.3),
                mean_dwell_cycles: 200_000,
            };
            c
        },
        {
            let mut c = poisson_cell(
                "poisson-0.6x/traditional/core-death@1.2M",
                0.6,
                ServingStrategy::Traditional,
                horizon,
                Contract::FaultRide,
            );
            c.config.faults = vec![StreamFault { at_cycle: 1_200_000, dead_cores: vec![5] }];
            c
        },
        {
            let mut c = poisson_cell(
                "poisson-3.0x/controller",
                3.0,
                ServingStrategy::Traditional,
                horizon,
                Contract::Controller,
            );
            c.config.controller = Some(ControllerConfig {
                high_queue: 4,
                patience: 1,
                ..ControllerConfig::default()
            });
            c
        },
    ];
    if effort == "paper" {
        cells.push(poisson_cell(
            "poisson-0.4x/ss",
            0.4,
            ServingStrategy::Ss,
            horizon,
            Contract::SubSaturation,
        ));
        cells.push(poisson_cell(
            "poisson-1.5x/structure",
            1.5,
            ServingStrategy::Structure,
            horizon,
            Contract::Overload,
        ));
        cells.push({
            let mut c =
                ServingConfig { cores: 16, chiplets: 2, max_batch: 4, ..ServingConfig::default() };
            let capacity = service_capacity_rpmc(&c).expect("mcm capacity");
            c.arrivals = ArrivalConfig {
                process: ArrivalProcess::Poisson { rate_rpmc: capacity * 0.4 },
                horizon_cycles: horizon,
                seed: 2019,
            };
            Cell {
                label: "poisson-0.4x/mcm-2x16".into(),
                config: c,
                contract: Contract::SubSaturation,
            }
        });
    }
    cells
}

/// Contract violations for one cell (empty = the cell passed).
fn check(contract: Contract, r: &ServingReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.outcomes.total() as usize != r.offered {
        v.push(format!("{} outcomes for {} offered requests", r.outcomes.total(), r.offered));
    }
    if r.halted_at.is_some() {
        v.push(format!("stream halted at {:?}", r.halted_at));
    }
    if r.served() == 0 {
        v.push("no request was served".into());
    }
    match contract {
        Contract::SubSaturation => {
            if r.outcomes.shed > 0 {
                v.push(format!("{} sheds below saturation", r.outcomes.shed));
            }
            if r.outcomes.deadline_miss > 0 {
                v.push(format!("{} deadline misses below saturation", r.outcomes.deadline_miss));
            }
            if r.latency.p99 > r.latency_budget {
                v.push(format!("p99 {} over budget {}", r.latency.p99, r.latency_budget));
            }
        }
        Contract::Overload => {
            if r.outcomes.shed == 0 {
                v.push("2x overload shed nothing — admission control is not engaging".into());
            }
            if r.latency.p99 > r.latency_budget {
                v.push(format!("served p99 {} over budget {}", r.latency.p99, r.latency_budget));
            }
        }
        Contract::Burst => {} // the common checks above are the contract
        Contract::FaultRide => {
            if r.recoveries.len() != 1 {
                v.push(format!("{} recoveries for one scheduled fault", r.recoveries.len()));
            }
            if r.phases.len() < 2 {
                v.push(format!("{} phases — the fault never split the timeline", r.phases.len()));
            }
            if let (Some(pre), Some(post)) = (r.phases.first(), r.phases.last()) {
                if post.served == 0 {
                    v.push("post-fault phase served nothing".into());
                }
                if post.sustained_rpmc <= 0.0 || post.sustained_rpmc < pre.sustained_rpmc * 0.2 {
                    v.push(format!(
                        "post-fault throughput {:.3} rpmc collapsed vs pre-fault {:.3}",
                        post.sustained_rpmc, pre.sustained_rpmc
                    ));
                }
            }
        }
        Contract::Controller => {
            if r.controller_events.is_empty() {
                v.push("3x overload triggered no strategy switch".into());
            }
        }
    }
    v
}

fn main() {
    lts_obs::enable_from_env();
    let effort = std::env::var("LTS_EFFORT").unwrap_or_else(|_| "paper".into());
    let horizon = match effort.as_str() {
        "quick" => 4_000_000u64,
        "paper" => 6_000_000,
        other => panic!("LTS_EFFORT must be `quick` or `paper`, got `{other}`"),
    };
    let iters = timing::iters_from_env(2);
    println!("=== Learn-to-Scale reproduction: online serving sweep (fail-operational) ===");
    println!("(effort: {effort}, {horizon}-cycle horizon, seed 2019, {iters} timed iters/cell)\n");

    simcache::reset();
    let mut report = BenchReport::new("serving", &effort);
    let mut sim = SimUsage::default();
    let mut violations: Vec<String> = Vec::new();
    let cells = cells(&effort, horizon);
    let mut rows: Vec<(String, ServingReport)> = Vec::new();
    for cell in &cells {
        let mut last: Option<ServingReport> = None;
        let record = timing::time(&cell.label, 1, iters, || {
            last = Some(run_serving(&cell.config).expect("serving run"));
        });
        report.push(record);
        let r = last.expect("timed at least once");
        for problem in check(cell.contract, &r) {
            violations.push(format!("{}: {problem}", cell.label));
        }
        sim.merge(&r.sim);
        rows.push((cell.label.clone(), r));
    }

    println!(
        "\n{:<38} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>7} {:>4} {:>4}",
        "cell", "offer", "serve", "shed", "miss", "p50", "p95", "p99", "rpmc", "sw", "rec"
    );
    for (label, r) in &rows {
        println!(
            "{:<38} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>7.3} {:>4} {:>4}",
            label,
            r.offered,
            r.served(),
            r.outcomes.shed,
            r.outcomes.deadline_miss,
            r.latency.p50,
            r.latency.p95,
            r.latency.p99,
            r.sustained_rpmc,
            r.controller_events.len(),
            r.recoveries.len(),
        );
        report.notes.push(format!(
            "{label}: offered {} outcomes[{}] p99 {} budget {} sustained {:.3} rpmc",
            r.offered,
            r.outcomes.render(),
            r.latency.p99,
            r.latency_budget,
            r.sustained_rpmc
        ));
    }

    let cache = simcache::stats();
    println!(
        "\nsim usage: {} transitions simulated, {} answered from cache ({} hits / {} misses); \
         {} cycles stepped, {} fast-forwarded",
        sim.sims,
        sim.cache_hits,
        cache.hits,
        cache.misses,
        sim.cycles_simulated,
        sim.cycles_fast_forwarded
    );
    println!();
    println!("Each cell replays one seeded open-loop stream through the serving simulator:");
    println!("bounded-queue admission, batch coalescing under the latency budget, deadline");
    println!("shedding, and — where scheduled — mid-stream core deaths ridden out by the");
    println!("online recovery path. `rpmc` is sustained requests per million cycles; `sw`");
    println!("counts SLO-controller strategy switches, `rec` mid-stream recoveries.");

    report.attach_probes();
    report.write_checked().expect("serving bench report (regression gate)");

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION {v}");
        }
        eprintln!(
            "serving sweep: {} cell(s) violated the fail-operational contract",
            violations.len()
        );
        std::process::exit(1);
    }
    println!("\nall {} cells satisfied their regime contracts", rows.len());
}
