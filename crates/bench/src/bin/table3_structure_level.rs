//! Regenerates **Table III and Fig. 7**: structure-level parallelization
//! of the ConvNet variants on 16 cores (accuracy, speedup, communication
//! energy reduction).
//!
//! Trains three networks on the synthetic ImageNet10. Run:
//! `cargo run --release -p lts-bench --bin table3_structure_level`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::{banner, effort_from_env};
use lts_core::experiment::table3_rows;
use lts_core::report::render_table3;

fn main() {
    let preset = effort_from_env();
    banner("Table III / Fig. 7 — structure-level parallelization (16 cores)", &preset);
    let rows = table3_rows(&preset).expect("table 3 experiment");
    println!("{}", render_table3(&rows));
    println!();
    println!(
        "Paper: Parallel#1 acc 0.726 1x | Parallel#2 acc 0.698 4.9x | Parallel#3 acc 0.742 4.6x"
    );
    println!("Paper Fig. 7: comm energy reduction 91% (#2), 88% (#3)");
    println!();
    println!("Fig. 7 series (per-variant, vs Parallel#1):");
    for r in &rows {
        println!(
            "  {:<11} perf speedup {:>5.2}x  comm speedup {:>6}  comm energy reduction {:>5.1}%",
            r.name,
            r.speedup,
            if r.comm_speedup.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.2}x", r.comm_speedup)
            },
            r.comm_energy_reduction * 100.0
        );
    }
}
