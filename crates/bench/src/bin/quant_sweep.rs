//! The 16-bit fixed-point fast path, measured end to end: i16 vs f32
//! GEMM microkernels on the hot-path shape, then a strategy × network ×
//! precision sweep where each trained model is deployed under both
//! [`Precision::I16`] (calibrated symmetric scales, i16 register-blocked
//! GEMM) and [`Precision::F32`] (the full-precision reference), comparing
//! top-1 accuracy, evaluation latency, NoC traffic width and simulated
//! single-pass cycles.
//!
//! Writes `BENCH_quant.json` through the `LTS_BENCH_BASELINE` regression
//! gate and loads it back to prove the report round-trips. Run:
//! `cargo run --release -p lts-bench --bin quant_sweep`
//! (`LTS_EFFORT=quick` for a fast pass).

use lts_bench::timing::{iters_from_env, time, BenchReport};
use lts_bench::{banner, effort_from_env};
use lts_core::experiment::train_presets;
use lts_core::pipeline::{
    evaluate, plan_for_precision, train_baseline, train_sparsified, PipelineConfig,
};
use lts_core::strategy::SparsityScheme;
use lts_core::system::SystemModel;
use lts_core::Precision;
use lts_datasets::{presets, TrainTest};
use lts_nn::prune::PruneCriterion;
use lts_nn::{models, Network};
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, matmul, qmatmul, Shape};

/// Hot-path microbench GEMM dimension (matches `benches/hotpath.rs`).
const N: usize = 256;

/// i16 vs f32 uplift the blocked A·Bᵀ kernels (the quantized Linear
/// forward hot path) must deliver on the microbench shape.
const MIN_UPLIFT: f64 = 1.5;

fn main() {
    let preset = effort_from_env();
    banner("quantization sweep — i16 fast path vs f32 reference", &preset);
    let mut report = BenchReport::new("quant", effort_label(&preset));
    let host = report.host_cpus;

    // --- Microkernels: identical 256^3 workload, single-threaded. -------
    par::install(ExecConfig::new(1));
    let mut rng = init::rng(1);
    let af = init::uniform(Shape::d2(N, N), 1.0, &mut rng);
    let bf = init::uniform(Shape::d2(N, N), 1.0, &mut rng);
    let (afv, bfv) = (af.as_slice(), bf.as_slice());
    // ~10-bit operands, the realistic post-headroom quantized range.
    let gen =
        |s: usize| -> Vec<i16> { (0..N * N).map(|i| ((i * 7 + s) % 2047) as i16 - 1023).collect() };
    let (aq, bq) = (gen(3), gen(11));
    let mut cf = vec![0.0f32; N * N];
    let mut cq = vec![0i32; N * N];
    // Floor of 10 so the uplift gate below always averages over enough
    // samples to ride out scheduler jitter, even under LTS_BENCH_ITERS=1
    // smoke runs.
    let iters = iters_from_env(20).max(10);
    report.push(time("gemm_f32_256_t1", 3, iters, || {
        matmul::matmul_into(afv, bfv, &mut cf, N, N, N);
    }));
    report.push(time("gemm_i16_256_t1", 3, iters, || {
        qmatmul::matmul_i16_into(&aq, &bq, &mut cq, N, N, N);
    }));
    report.push(time("gemm_a_bt_f32_256_t1", 3, iters, || {
        matmul::matmul_a_bt_into(afv, bfv, &mut cf, N, N, N);
    }));
    report.push(time("gemm_a_bt_i16_256_t1", 3, iters, || {
        qmatmul::matmul_a_bt_i16_into(&aq, &bq, &mut cq, N, N, N);
    }));
    let up_gemm = uplift(&report, "gemm_f32_256_t1", "gemm_i16_256_t1");
    let up_bt = uplift(&report, "gemm_a_bt_f32_256_t1", "gemm_a_bt_i16_256_t1");
    let macs = (N * N * N) as f64;
    for (name, up) in [("gemm_256", up_gemm), ("gemm_a_bt_256", up_bt)] {
        lts_obs::gauge_set(&format!("quant.{name}_macs_per_cycle_uplift"), up);
        report.note(format!("{name}: i16/f32 MACs-per-cycle uplift {up:.2}x"));
    }
    report.note(format!(
        "MACs/cycle caveat: both kernels timed single-threaded on one CPU of the same host \
         at the same frequency, so the wall-time ratio IS the MACs/cycle ratio; absolute \
         cycle counts are not measurable from safe Rust ({:.0}M MACs per iteration)",
        macs / 1e6
    ));
    report.note(
        "A*B finding: safe-Rust autovectorization at baseline SSE2 lowers the i16 dot via \
         punpcklwd widening, spending pmaddwd as a 4-MAC widening multiply instead of the \
         8-MAC fused form, so i16 A*B lands at parity with the near-ceiling f32 A*B kernel; \
         the blocked A*B^T pair (the quantized Linear forward hot path) realizes the i16 win \
         because eight concurrent i32 accumulator chains fill the pipeline that the scalar \
         f32 dot leaves stalled",
    );
    if !cfg!(debug_assertions) {
        assert!(
            up_bt >= MIN_UPLIFT,
            "i16 A*B^T uplift {up_bt:.2}x below the {MIN_UPLIFT}x contract"
        );
    }

    // --- Strategy x network x precision, end to end. --------------------
    par::install(ExecConfig::new(host));
    let mnist = presets::synth_mnist(preset.train_samples, preset.test_samples, preset.seed);
    let imagenet =
        presets::synth_imagenet10(preset.train_samples, preset.test_samples, preset.seed);
    let seed = preset.seed;
    let (mlp_lr, mlp_mul) = train_presets::MLP;
    let (lenet_lr, lenet_mul) = train_presets::LENET;
    let (conv_lr, conv_mul) = train_presets::CONVNET;

    // Train each (network, strategy) cell ONCE — training is precision-
    // independent — then deploy the same weights under both precisions, so
    // every accuracy delta is purely the quantization error.
    struct Cell {
        name: &'static str,
        net: Network,
        sparse: bool,
        config: PipelineConfig,
        data: TrainTest,
    }
    let prune = PruneCriterion::RmsBelowRelative(0.35);
    let cell = |name: &'static str,
                scheme: Option<SparsityScheme>,
                build: lts_nn::Result<Network>,
                config: PipelineConfig,
                data: &TrainTest|
     -> Cell {
        let net = build.expect("model builds");
        let trained = match scheme {
            None => train_baseline(net, data, &config).expect("baseline trains").network,
            Some(s) => {
                train_sparsified(net, data, &config, 16, s, 2.0, prune)
                    .expect("sparsified trains")
                    .network
            }
        };
        Cell { name, net: trained, sparse: scheme.is_some(), config, data: data.clone() }
    };
    let mlp_cfg = preset.pipeline_config_with(mlp_lr, mlp_mul);
    let lenet_cfg = preset.pipeline_config_with(lenet_lr, lenet_mul);
    let conv_cfg = preset.pipeline_config_with(conv_lr, conv_mul);
    let cells = vec![
        cell("mlp_baseline", None, models::mlp(28 * 28, 10, seed), mlp_cfg, &mnist),
        cell("mlp_ss", Some(SparsityScheme::Ss), models::mlp(28 * 28, 10, seed), mlp_cfg, &mnist),
        cell(
            "mlp_ss_mask",
            Some(SparsityScheme::mask()),
            models::mlp(28 * 28, 10, seed),
            mlp_cfg,
            &mnist,
        ),
        cell("lenet_baseline", None, models::lenet(10, seed), lenet_cfg, &mnist),
        cell(
            "lenet_ss_mask",
            Some(SparsityScheme::mask()),
            models::lenet(10, seed),
            lenet_cfg,
            &mnist,
        ),
        cell(
            "convnet_grouped",
            None,
            models::convnet_variant([64, 128, 256], 16, seed),
            conv_cfg,
            &imagenet,
        ),
    ];

    // Two test-set misclassifications of slack, but never tighter than the
    // 1% contract: at quick effort (96 samples) one flipped sample already
    // moves top-1 by >1%.
    let tol = (2.0 / preset.test_samples as f32).max(0.01);
    let model = SystemModel::paper(16).expect("paper system model");
    let eval_iters = iters_from_env(3);
    for c in &cells {
        let mut acc = [0.0f32; 2];
        for (slot, precision) in [Precision::I16, Precision::F32].into_iter().enumerate() {
            let config = PipelineConfig {
                precision,
                // f32 reference = untouched master weights.
                quantize: precision == Precision::I16,
                ..c.config
            };
            report.push(time(&format!("eval_{}_{}", c.name, precision), 0, eval_iters, || {
                acc[slot] = evaluate(&c.net, &c.data, &config).expect("evaluation succeeds");
            }));
        }
        let [acc_i16, acc_f32] = acc;
        let plan_i16 =
            plan_for_precision(&c.net, 16, c.sparse, true, Precision::I16).expect("i16 plan");
        let plan_f32 =
            plan_for_precision(&c.net, 16, c.sparse, true, Precision::F32).expect("f32 plan");
        assert_eq!(
            2 * plan_i16.total_traffic_bytes(),
            plan_f32.total_traffic_bytes(),
            "{}: i16 must move exactly 2 bytes/value vs f32's 4",
            c.name
        );
        let cyc_i16 = model.evaluate(&plan_i16).expect("i16 system eval").total_cycles;
        let cyc_f32 = model.evaluate(&plan_f32).expect("f32 system eval").total_cycles;
        report.note(format!(
            "{}: top-1 i16 {:.1}% vs f32 {:.1}% (|delta| {:.2}% <= {:.2}%); single-pass \
             {cyc_i16} cycles @2B/value vs {cyc_f32} @4B/value",
            c.name,
            100.0 * acc_i16,
            100.0 * acc_f32,
            100.0 * (acc_i16 - acc_f32).abs(),
            100.0 * tol,
        ));
        assert!(
            (acc_i16 - acc_f32).abs() <= tol,
            "{}: i16 accuracy {acc_i16} drifted more than {tol} from f32 {acc_f32}",
            c.name
        );
    }
    report.note(
        "each cell trains once (training is precision-independent) and deploys the same \
         weights under i16 and f32, so accuracy deltas are pure quantization error",
    );

    report.attach_probes();
    let path = report.write_checked().expect("write benchmark report");
    let back = BenchReport::load(&path).expect("BENCH_quant.json loads back");
    assert_eq!(back.records.len(), report.records.len(), "report did not round-trip");
    println!("round-trip ok: {} records reloaded from {}", back.records.len(), path.display());
}

/// `before/after` mean-time ratio of two records (= MACs/cycle uplift on
/// an identical workload).
fn uplift(report: &BenchReport, f32_name: &str, i16_name: &str) -> f64 {
    let mean = |name: &str| {
        report.records.iter().find(|r| r.name == name).map(|r| r.mean_ms).unwrap_or(f64::NAN)
    };
    mean(f32_name) / mean(i16_name)
}

fn effort_label(preset: &lts_core::experiment::EffortPreset) -> &'static str {
    if *preset == lts_core::experiment::EffortPreset::quick() {
        "quick"
    } else {
        "paper"
    }
}
