//! Integration tests of the performance-history pipeline: statistics
//! properties, ledger round-trips, and the `write_checked` history hook.

use lts_bench::history::store::{fnv1a64_hex, SCHEMA_VERSION};
use lts_bench::history::{
    classify, compare_records, mann_whitney_u, trend_report, HistoryRecord, HistoryStore,
    MetricKind, MetricSeries, SignificanceConfig, Verdict,
};
use lts_bench::timing::{BenchRecord, BenchReport, HostFingerprint};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lts-history-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry(bench: &str, rev: &str, samples: Vec<f64>) -> HistoryRecord {
    HistoryRecord {
        schema: SCHEMA_VERSION,
        seq: 0,
        bench: bench.into(),
        params: "it".into(),
        params_hash: fnv1a64_hex("it"),
        git_rev: rev.into(),
        git_dirty: false,
        effort: "quick".into(),
        reps: samples.len(),
        fingerprint: HostFingerprint::probe(),
        notes: vec![],
        metrics: vec![MetricSeries::from_samples("e2e", MetricKind::Record, samples)],
    }
}

#[test]
fn ledger_survives_reload_and_detects_injected_regression() {
    let store = HistoryStore::open(temp_root("e2e")).expect("open");
    let base = vec![10.0, 9.9, 10.1, 10.05, 9.95, 10.02];
    let slowed: Vec<f64> = base.iter().map(|x| x * 1.3).collect();
    store.append(entry("b", "r1", base), false).expect("append r1");
    store.append(entry("b", "r2", slowed), false).expect("append r2");

    // Reopen from disk: everything must come back through JSON.
    let reopened = HistoryStore::open(store.root()).expect("reopen");
    let history = reopened.load_bench("b").expect("load");
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].fingerprint.os, std::env::consts::OS);

    let report = compare_records(&history[0], &history[1], &SignificanceConfig::default());
    assert_eq!(report.verdicts[0].verdict, Verdict::Regression, "{report:?}");
    assert_eq!(report.summary.get("regression"), Some(&1));

    let trend = trend_report(&history, &SignificanceConfig::default());
    assert_eq!(trend.rows[0].first_regressing_rev.as_deref(), Some("r2"));
    // JSON round-trip of the comparison report (BTreeMap summary included).
    let json = serde_json::to_string(&report).expect("serialize comparison");
    let back: lts_bench::history::ComparisonReport =
        serde_json::from_str(&json).expect("parse comparison");
    assert_eq!(back, report);
}

#[test]
fn write_checked_appends_to_history_when_enabled() {
    let bench_dir = temp_root("hook");
    std::fs::create_dir_all(&bench_dir).expect("bench dir");
    let history_dir = bench_dir.join("BENCH_HISTORY");
    // These variables are read only by this test's write_checked call;
    // the rest of this test binary uses explicit store roots.
    std::env::set_var("LTS_BENCH_DIR", &bench_dir);
    std::env::set_var("LTS_BENCH_HISTORY_DIR", &history_dir);
    std::env::set_var("LTS_BENCH_HISTORY", "1");
    std::env::set_var("LTS_BENCH_ALLOW_DIRTY", "1");

    let mut report = BenchReport::new("hooked", "quick");
    report.records.push(BenchRecord {
        name: "w".into(),
        threads: 1,
        iters: 3,
        mean_ms: 2.0,
        min_ms: 1.9,
        max_ms: 2.1,
        median_ms: Some(2.0),
        mad_ms: Some(0.05),
        reps: None,
    });
    report.write_checked().expect("write + history append");

    std::env::remove_var("LTS_BENCH_HISTORY");
    std::env::remove_var("LTS_BENCH_HISTORY_DIR");
    std::env::remove_var("LTS_BENCH_DIR");
    std::env::remove_var("LTS_BENCH_ALLOW_DIRTY");

    let store = HistoryStore::open(&history_dir).expect("open ledger");
    let history = store.load_bench("hooked").expect("load");
    assert_eq!(history.len(), 1, "one single-rep entry appended");
    assert_eq!(history[0].reps, 1);
    let m = history[0].metric(MetricKind::Record, "w").expect("series");
    assert_eq!(m.samples, vec![2.0], "the record median is the single sample");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rank test is symmetric: swapping the samples preserves the
    /// p-value exactly and negates the effect size.
    #[test]
    fn rank_test_is_symmetric(
        pair in proptest::collection::vec((1.0f64..1000.0, 1.0f64..1000.0), 1..12)
    ) {
        let a: Vec<f64> = pair.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pair.iter().map(|p| p.1).collect();
        let ab = mann_whitney_u(&a, &b);
        let ba = mann_whitney_u(&b, &a);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-12, "{ab:?} vs {ba:?}");
        prop_assert!((ab.effect_r + ba.effect_r).abs() < 1e-12, "{ab:?} vs {ba:?}");
        prop_assert!((ab.z + ba.z).abs() < 1e-9, "{ab:?} vs {ba:?}");
    }

    /// Two identical sample sets are never flagged in either direction,
    /// at any repetition count.
    #[test]
    fn identical_samples_are_never_flagged(
        samples in proptest::collection::vec(0.001f64..1000.0, 1..16)
    ) {
        let t = mann_whitney_u(&samples, &samples);
        // erfc is a rational approximation, good to ~1.2e-7.
        prop_assert!((t.p_value - 1.0).abs() < 1e-6, "{t:?}");
        let j = classify(&samples, &samples, &SignificanceConfig::default());
        prop_assert!(
            j.verdict == Verdict::NoChange || j.verdict == Verdict::Inconclusive,
            "identical samples flagged {:?}", j
        );
        prop_assert!(j.verdict != Verdict::Regression && j.verdict != Verdict::Improvement);
        prop_assert!(j.delta.abs() < 1e-12, "{j:?}");
    }

    /// Classification is direction-consistent: if new-vs-old is a
    /// regression, old-vs-new is an improvement with the same p-value.
    #[test]
    // scale ≥ 1.2 keeps both directions above the 5% effect floor: the
    // reverse delta is (s−1)/s, which dips below 5% for s just over 1.05.
    fn verdicts_mirror_under_swap(
        base in proptest::collection::vec(50.0f64..150.0, 4..10),
        scale in 1.2f64..3.0,
    ) {
        let scaled: Vec<f64> = base.iter().map(|x| x * scale).collect();
        let fwd = classify(&base, &scaled, &SignificanceConfig::default());
        let rev = classify(&scaled, &base, &SignificanceConfig::default());
        prop_assert!((fwd.p_value - rev.p_value).abs() < 1e-12);
        match fwd.verdict {
            Verdict::Regression => prop_assert_eq!(rev.verdict, Verdict::Improvement),
            Verdict::Improvement => prop_assert_eq!(rev.verdict, Verdict::Regression),
            _ => {}
        }
    }
}
